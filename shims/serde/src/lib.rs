//! Offline stand-in for `serde`, built on an explicit content tree.
//!
//! The real serde visits values through a visitor API; this shim instead
//! funnels everything through [`Content`], a small self-describing tree
//! (null / bool / integers / float / string / bytes / seq / map). A
//! [`Serializer`] receives the whole tree via
//! [`Serializer::serialize_content`]; a [`Deserializer`] surrenders one
//! via [`Deserializer::take_content`]. This is enough to support the
//! workspace's derived impls, its hand-written `#[serde(with = "…")]`
//! modules, and the JSON shim, while staying a few hundred lines.
//!
//! External tagging mirrors serde's defaults so JSON output looks
//! conventional: unit variants become strings, data variants become
//! single-entry maps, newtype structs are transparent.

use std::collections::{BTreeMap, HashMap};
use std::fmt::{self, Display};
use std::time::Duration;

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// A self-describing value tree: the shim's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Content {
    /// JSON `null` / `Option::None`.
    Null,
    /// A boolean.
    Bool(bool),
    /// A non-negative integer (also how JSON parses them).
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// A byte buffer (serialized as a JSON array of numbers).
    Bytes(Vec<u8>),
    /// A sequence.
    Seq(Vec<Content>),
    /// A map or struct: ordered key/value pairs.
    Map(Vec<(Content, Content)>),
}

/// Error produced while converting a [`Content`] tree into a value.
#[derive(Debug, Clone, PartialEq)]
pub struct ContentError(pub String);

impl ContentError {
    /// Creates an error with the given message.
    pub fn new(message: impl Into<String>) -> Self {
        ContentError(message.into())
    }
}

impl Display for ContentError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for ContentError {}

/// An uninhabited error type for infallible serializers.
#[derive(Debug)]
pub enum Never {}

impl Display for Never {
    fn fmt(&self, _: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {}
    }
}

/// A value that can be turned into a [`Content`] tree.
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// A sink for [`Content`] trees.
pub trait Serializer: Sized {
    /// Value returned on success.
    type Ok;
    /// Error type.
    type Error;

    /// Consumes a complete content tree.
    fn serialize_content(self, content: Content) -> Result<Self::Ok, Self::Error>;

    /// Serializes a string (convenience used by hand-written impls).
    fn serialize_str(self, value: &str) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Str(value.to_owned()))
    }

    /// Serializes a byte buffer (convenience used by hand-written impls).
    fn serialize_bytes(self, value: &[u8]) -> Result<Self::Ok, Self::Error> {
        self.serialize_content(Content::Bytes(value.to_vec()))
    }
}

/// A source of [`Content`] trees.
pub trait Deserializer<'de>: Sized {
    /// Error type; must support attaching custom messages.
    type Error: de::Error;

    /// Surrenders the complete content tree.
    fn take_content(self) -> Result<Content, Self::Error>;
}

/// A value that can be rebuilt from a [`Content`] tree.
pub trait Deserialize<'de>: Sized {
    /// Deserializes a value from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// Deserialization support types (mirrors `serde::de`).
pub mod de {
    use super::{ContentError, Deserialize};
    use std::fmt::Display;

    /// Errors that can carry a caller-supplied message.
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(message: T) -> Self;
    }

    impl Error for ContentError {
        fn custom<T: Display>(message: T) -> Self {
            ContentError(message.to_string())
        }
    }

    /// A value deserializable without borrowing from the input.
    pub trait DeserializeOwned: for<'de> Deserialize<'de> {}

    impl<T: for<'de> Deserialize<'de>> DeserializeOwned for T {}
}

/// Serialization support types (mirrors `serde::ser`).
pub mod ser {
    use std::fmt::Display;

    /// Errors that can carry a caller-supplied message.
    pub trait Error: Sized {
        /// Builds an error from any displayable message.
        fn custom<T: Display>(message: T) -> Self;
    }
}

/// Serializer that captures the content tree itself. Infallible.
pub struct ContentCapture;

impl Serializer for ContentCapture {
    type Ok = Content;
    type Error = Never;

    fn serialize_content(self, content: Content) -> Result<Content, Never> {
        Ok(content)
    }
}

/// Deserializer reading from an owned content tree.
pub struct ContentDeserializer {
    content: Content,
}

impl ContentDeserializer {
    /// Wraps a content tree for deserialization.
    pub fn new(content: Content) -> Self {
        ContentDeserializer { content }
    }
}

impl<'de> Deserializer<'de> for ContentDeserializer {
    type Error = ContentError;

    fn take_content(self) -> Result<Content, ContentError> {
        Ok(self.content)
    }
}

/// Captures any serializable value as a content tree.
pub fn to_content<T: Serialize + ?Sized>(value: &T) -> Content {
    match value.serialize(ContentCapture) {
        Ok(content) => content,
        Err(never) => match never {},
    }
}

/// Rebuilds a value from a content tree.
pub fn from_content<T: de::DeserializeOwned>(content: Content) -> Result<T, ContentError> {
    T::deserialize(ContentDeserializer::new(content))
}

/// Helper used by derived impls: a struct's fields as a take-by-name map.
#[derive(Debug)]
pub struct FieldMap {
    entries: Vec<(String, Content)>,
}

impl FieldMap {
    /// Interprets `content` as a struct body (a map with string keys).
    pub fn from_content(content: Content, type_name: &str) -> Result<Self, ContentError> {
        match content {
            Content::Map(pairs) => {
                let mut entries = Vec::with_capacity(pairs.len());
                for (key, value) in pairs {
                    match key {
                        Content::Str(name) => entries.push((name, value)),
                        other => {
                            return Err(ContentError(format!(
                                "{type_name}: non-string field key {other:?}"
                            )))
                        }
                    }
                }
                Ok(FieldMap { entries })
            }
            other => Err(ContentError(format!(
                "{type_name}: expected a map of fields, got {other:?}"
            ))),
        }
    }

    /// Removes and returns the named field.
    pub fn take(&mut self, name: &str) -> Result<Content, ContentError> {
        match self.entries.iter().position(|(key, _)| key == name) {
            Some(index) => Ok(self.entries.remove(index).1),
            None => Err(ContentError(format!("missing field `{name}`"))),
        }
    }

    /// Removes and returns the named field, or `None` when absent — the
    /// backing for `#[serde(default)]` fields.
    pub fn take_opt(&mut self, name: &str) -> Option<Content> {
        self.entries
            .iter()
            .position(|(key, _)| key == name)
            .map(|index| self.entries.remove(index).1)
    }
}

/// Helper used by derived impls: normalizes an externally tagged enum
/// value into `(variant_name, payload)`. Unit variants yield `Null`.
pub fn enum_parts(content: Content, type_name: &str) -> Result<(String, Content), ContentError> {
    match content {
        Content::Str(name) => Ok((name, Content::Null)),
        Content::Map(mut pairs) => {
            if pairs.len() != 1 {
                return Err(ContentError(format!(
                    "{type_name}: enum map must have exactly one key"
                )));
            }
            let (key, value) = pairs.pop().expect("length checked");
            match key {
                Content::Str(name) => Ok((name, value)),
                other => Err(ContentError(format!(
                    "{type_name}: non-string variant key {other:?}"
                ))),
            }
        }
        other => Err(ContentError(format!(
            "{type_name}: expected enum representation, got {other:?}"
        ))),
    }
}

/// Helper used by derived impls: a tuple payload as a content vector.
pub fn seq_parts(
    content: Content,
    expected: usize,
    type_name: &str,
) -> Result<Vec<Content>, ContentError> {
    match content {
        Content::Seq(items) if items.len() == expected => Ok(items),
        Content::Seq(items) => Err(ContentError(format!(
            "{type_name}: expected {expected} elements, got {}",
            items.len()
        ))),
        other => Err(ContentError(format!(
            "{type_name}: expected a sequence, got {other:?}"
        ))),
    }
}

// ---------------------------------------------------------------------
// Serialize / Deserialize impls for std types the workspace uses.
// ---------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::U64(u64::from(*self)))
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.take_content()?;
                let value = match content {
                    Content::U64(v) => v,
                    Content::I64(v) if v >= 0 => v as u64,
                    other => {
                        return Err(de::Error::custom(format_args!(
                            "expected unsigned integer, got {other:?}"
                        )))
                    }
                };
                <$ty>::try_from(value).map_err(|_| {
                    de::Error::custom(format_args!(
                        "value {value} out of range for {}", stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

impl_unsigned!(u8, u16, u32, u64);

macro_rules! impl_signed {
    ($($ty:ty),*) => {$(
        impl Serialize for $ty {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                let value = i64::from(*self);
                if value >= 0 {
                    serializer.serialize_content(Content::U64(value as u64))
                } else {
                    serializer.serialize_content(Content::I64(value))
                }
            }
        }

        impl<'de> Deserialize<'de> for $ty {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                let content = deserializer.take_content()?;
                let value: i64 = match content {
                    Content::I64(v) => v,
                    Content::U64(v) => i64::try_from(v).map_err(|_| {
                        de::Error::custom(format_args!("integer {v} overflows i64"))
                    })?,
                    other => {
                        return Err(de::Error::custom(format_args!(
                            "expected signed integer, got {other:?}"
                        )))
                    }
                };
                <$ty>::try_from(value).map_err(|_| {
                    de::Error::custom(format_args!(
                        "value {value} out of range for {}", stringify!($ty)
                    ))
                })
            }
        }
    )*};
}

impl_signed!(i8, i16, i32, i64);

impl Serialize for usize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::U64(*self as u64))
    }
}

impl<'de> Deserialize<'de> for usize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = u64::deserialize(deserializer)?;
        usize::try_from(value)
            .map_err(|_| de::Error::custom(format_args!("value {value} out of range for usize")))
    }
}

impl Serialize for isize {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (*self as i64).serialize(serializer)
    }
}

impl<'de> Deserialize<'de> for isize {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let value = i64::deserialize(deserializer)?;
        isize::try_from(value)
            .map_err(|_| de::Error::custom(format_args!("value {value} out of range for isize")))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Bool(*self))
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Bool(v) => Ok(v),
            other => Err(de::Error::custom(format_args!(
                "expected bool, got {other:?}"
            ))),
        }
    }
}

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(*self))
    }
}

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::F64(v) => Ok(v),
            Content::U64(v) => Ok(v as f64),
            Content::I64(v) => Ok(v as f64),
            other => Err(de::Error::custom(format_args!(
                "expected float, got {other:?}"
            ))),
        }
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::F64(f64::from(*self)))
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        Ok(f64::deserialize(deserializer)? as f32)
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.clone()))
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Str(v) => Ok(v),
            other => Err(de::Error::custom(format_args!(
                "expected string, got {other:?}"
            ))),
        }
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(self)
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Str(self.to_string()))
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let text = String::deserialize(deserializer)?;
        let mut chars = text.chars();
        match (chars.next(), chars.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(de::Error::custom("expected a single-character string")),
        }
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        match self {
            Some(value) => value.serialize(serializer),
            None => serializer.serialize_content(Content::Null),
        }
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        match deserializer.take_content()? {
            Content::Null => Ok(None),
            content => T::deserialize(ContentDeserializer::new(content))
                .map(Some)
                .map_err(|e| de::Error::custom(e.0)),
        }
    }
}

impl<T: Serialize> Serialize for Box<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(serializer)
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Box<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        T::deserialize(deserializer).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<'de, T: Deserialize<'de>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = match deserializer.take_content()? {
            Content::Seq(items) => items,
            Content::Bytes(bytes) => bytes.into_iter().map(Content::U64Byte).collect(),
            other => {
                return Err(de::Error::custom(format_args!(
                    "expected sequence, got {other:?}"
                )))
            }
        };
        items
            .into_iter()
            .map(|item| T::deserialize(ContentDeserializer::new(item)))
            .collect::<Result<Vec<T>, ContentError>>()
            .map_err(|e| de::Error::custom(e.0))
    }
}

impl Content {
    #[allow(non_snake_case)]
    fn U64Byte(byte: u8) -> Content {
        Content::U64(u64::from(byte))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Seq(self.iter().map(to_content).collect()))
    }
}

impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for [T; N] {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let items = Vec::<T>::deserialize(deserializer)?;
        let len = items.len();
        items
            .try_into()
            .map_err(|_| de::Error::custom(format_args!("expected {N} elements, got {len}")))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Map(
            self.iter()
                .map(|(k, v)| (to_content(k), to_content(v)))
                .collect(),
        ))
    }
}

impl<'de, K: Deserialize<'de> + Ord, V: Deserialize<'de>> Deserialize<'de> for BTreeMap<K, V> {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        map_entries(deserializer)?
            .into_iter()
            .map(|(k, v)| {
                Ok((
                    K::deserialize(ContentDeserializer::new(k))?,
                    V::deserialize(ContentDeserializer::new(v))?,
                ))
            })
            .collect::<Result<BTreeMap<K, V>, ContentError>>()
            .map_err(|e| de::Error::custom(e.0))
    }
}

impl<K: Serialize, V: Serialize, H> Serialize for HashMap<K, V, H> {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Map(
            self.iter()
                .map(|(k, v)| (to_content(k), to_content(v)))
                .collect(),
        ))
    }
}

impl<'de, K, V, H> Deserialize<'de> for HashMap<K, V, H>
where
    K: Deserialize<'de> + std::hash::Hash + Eq,
    V: Deserialize<'de>,
    H: std::hash::BuildHasher + Default,
{
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        map_entries(deserializer)?
            .into_iter()
            .map(|(k, v)| {
                Ok((
                    K::deserialize(ContentDeserializer::new(k))?,
                    V::deserialize(ContentDeserializer::new(v))?,
                ))
            })
            .collect::<Result<HashMap<K, V, H>, ContentError>>()
            .map_err(|e| de::Error::custom(e.0))
    }
}

fn map_entries<'de, D: Deserializer<'de>>(
    deserializer: D,
) -> Result<Vec<(Content, Content)>, D::Error> {
    match deserializer.take_content()? {
        Content::Map(pairs) => Ok(pairs),
        other => Err(de::Error::custom(format_args!(
            "expected map, got {other:?}"
        ))),
    }
}

macro_rules! impl_tuple {
    ($(($($name:ident : $index:tt),+)),+ $(,)?) => {$(
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
                serializer.serialize_content(Content::Seq(vec![$(to_content(&self.$index)),+]))
            }
        }

        impl<'de, $($name: Deserialize<'de>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
                const LEN: usize = [$($index),+].len();
                let items = match deserializer.take_content()? {
                    Content::Seq(items) if items.len() == LEN => items,
                    other => {
                        return Err(de::Error::custom(format_args!(
                            "expected {LEN}-tuple, got {other:?}"
                        )))
                    }
                };
                let mut items = items.into_iter();
                Ok(($(
                    $name::deserialize(ContentDeserializer::new(
                        items.next().expect("length checked"),
                    ))
                    .map_err(|e| de::Error::custom(e.0))?,
                )+))
            }
        }
    )+};
}

impl_tuple!(
    (T0: 0),
    (T0: 0, T1: 1),
    (T0: 0, T1: 1, T2: 2),
    (T0: 0, T1: 1, T2: 2, T3: 3),
);

impl Serialize for Duration {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_content(Content::Map(vec![
            (Content::Str("secs".into()), Content::U64(self.as_secs())),
            (
                Content::Str("nanos".into()),
                Content::U64(u64::from(self.subsec_nanos())),
            ),
        ]))
    }
}

impl<'de> Deserialize<'de> for Duration {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error> {
        let mut fields = FieldMap::from_content(deserializer.take_content()?, "Duration")
            .map_err(|e| de::Error::custom(e.0))?;
        let secs: u64 = from_content(fields.take("secs").map_err(|e| de::Error::custom(e.0))?)
            .map_err(|e| de::Error::custom(e.0))?;
        let nanos: u32 = from_content(fields.take("nanos").map_err(|e| de::Error::custom(e.0))?)
            .map_err(|e| de::Error::custom(e.0))?;
        Ok(Duration::new(secs, nanos))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(to_content(&7u64), Content::U64(7));
        assert_eq!(to_content(&-7i64), Content::I64(-7));
        assert_eq!(to_content(&3i64), Content::U64(3));
        let value: i64 = from_content(Content::I64(-9)).unwrap();
        assert_eq!(value, -9);
        let nested: Option<Vec<u8>> = from_content(Content::Seq(vec![Content::U64(1)])).unwrap();
        assert_eq!(nested, Some(vec![1]));
    }

    #[test]
    fn duration_round_trips() {
        let d = Duration::new(3, 450);
        let back: Duration = from_content(to_content(&d)).unwrap();
        assert_eq!(d, back);
    }

    #[test]
    fn map_round_trips() {
        let mut map = BTreeMap::new();
        map.insert("a".to_string(), 1u64);
        map.insert("b".to_string(), 2u64);
        let back: BTreeMap<String, u64> = from_content(to_content(&map)).unwrap();
        assert_eq!(map, back);
    }
}
