//! Offline stand-in for `proptest`: deterministic random testing with
//! the API subset the workspace uses.
//!
//! Strategies are generators over a seeded [`TestRng`] (splitmix64).
//! Each test function derives its seed from its own name, so runs are
//! reproducible without regression files; there is no shrinking — a
//! failing case reports the generated inputs instead. Integer
//! strategies bias toward boundary values to keep some of real
//! proptest's edge-seeking behaviour.

use std::fmt::Debug;
use std::ops::{Range, RangeInclusive};
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Deterministic splitmix64 generator.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator for one test case.
    pub fn for_case(seed: u64, case: u32) -> Self {
        TestRng {
            state: seed ^ (u64::from(case).wrapping_mul(0x9e37_79b9_7f4a_7c15)),
        }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform value in `[0, bound)`; `bound` must be non-zero.
    pub fn below(&mut self, bound: u64) -> u64 {
        self.next_u64() % bound
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// True with probability `1/n`.
    fn one_in(&mut self, n: u64) -> bool {
        self.below(n) == 0
    }
}

/// A generator of values for property tests.
pub trait Strategy: 'static {
    /// The generated value type.
    type Value: Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `map`.
    fn prop_map<O, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        O: Debug,
        F: Fn(Self::Value) -> O + 'static,
    {
        Map { inner: self, map }
    }

    /// Builds a recursive strategy: `recurse` receives strategies for
    /// "anything strictly shallower" and wraps them one level deeper,
    /// up to `depth` levels. The size/branch hints are accepted for API
    /// compatibility; generation depth alone bounds the output here.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
        R: Strategy<Value = Self::Value>,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let mut levels: Vec<BoxedStrategy<Self::Value>> = vec![self.boxed()];
        for _ in 0..depth {
            let shallower = Union::new(levels.clone()).boxed();
            levels.push(recurse(shallower).boxed());
        }
        Union::new(levels).boxed()
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized,
    {
        BoxedStrategy(Arc::new(self))
    }
}

/// A type-erased, cheaply cloneable strategy.
pub struct BoxedStrategy<V>(Arc<dyn Strategy<Value = V>>);

impl<V> Clone for BoxedStrategy<V> {
    fn clone(&self) -> Self {
        BoxedStrategy(Arc::clone(&self.0))
    }
}

impl<V: Debug + 'static> Strategy for BoxedStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        self.0.generate(rng)
    }
}

/// Strategy producing one fixed value.
#[derive(Clone, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone + Debug + 'static> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Strategy applying a function to another strategy's output.
#[derive(Clone)]
pub struct Map<S, F> {
    inner: S,
    map: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    O: Debug,
    F: Fn(S::Value) -> O + 'static,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.map)(self.inner.generate(rng))
    }
}

/// Strategy choosing uniformly among type-erased alternatives.
#[derive(Clone)]
pub struct Union<V> {
    options: Vec<BoxedStrategy<V>>,
}

impl<V> Union<V> {
    /// Creates a union; `options` must be non-empty.
    pub fn new(options: Vec<BoxedStrategy<V>>) -> Self {
        assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
        Union { options }
    }
}

impl<V: Debug + 'static> Strategy for Union<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        let pick = rng.below(self.options.len() as u64) as usize;
        self.options[pick].generate(rng)
    }
}

/// Function-pointer strategy used by [`any`].
#[derive(Clone, Copy)]
pub struct FnStrategy<V>(fn(&mut TestRng) -> V);

impl<V: Debug + 'static> Strategy for FnStrategy<V> {
    type Value = V;

    fn generate(&self, rng: &mut TestRng) -> V {
        (self.0)(rng)
    }
}

/// Types with a canonical full-range strategy.
pub trait Arbitrary: Sized + Debug + 'static {
    /// The strategy type returned by [`any`].
    type Strategy: Strategy<Value = Self>;

    /// The canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `A` (full value range).
pub fn any<A: Arbitrary>() -> A::Strategy {
    A::arbitrary()
}

macro_rules! impl_arbitrary_int {
    ($($ty:ty),*) => {$(
        impl Arbitrary for $ty {
            type Strategy = FnStrategy<$ty>;

            fn arbitrary() -> FnStrategy<$ty> {
                FnStrategy(|rng| {
                    if rng.one_in(8) {
                        const SPECIAL: [$ty; 4] = [0, 1, <$ty>::MIN, <$ty>::MAX];
                        SPECIAL[rng.below(4) as usize]
                    } else {
                        rng.next_u64() as $ty
                    }
                })
            }
        }
    )*};
}

impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    type Strategy = FnStrategy<bool>;

    fn arbitrary() -> FnStrategy<bool> {
        FnStrategy(|rng| rng.next_u64() & 1 == 1)
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u64;
                if rng.one_in(16) {
                    // Bias toward the endpoints.
                    if rng.next_u64() & 1 == 0 { self.start } else { self.end - 1 }
                } else {
                    (self.start as i128 + rng.below(width) as i128) as $ty
                }
            }
        }

        impl Strategy for RangeInclusive<$ty> {
            type Value = $ty;

            fn generate(&self, rng: &mut TestRng) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range strategy");
                let width = (end as i128 - start as i128 + 1) as u64;
                (start as i128 + rng.below(width) as i128) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty range strategy");
        self.start + rng.unit_f64() * (self.end - self.start)
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($name:ident : $index:tt),+)),+ $(,)?) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$index.generate(rng),)+)
            }
        }
    )+};
}

impl_tuple_strategy!(
    (A: 0, B: 1),
    (A: 0, B: 1, C: 2),
    (A: 0, B: 1, C: 2, D: 3),
    (A: 0, B: 1, C: 2, D: 3, E: 4),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6),
    (A: 0, B: 1, C: 2, D: 3, E: 4, F: 5, G: 6, H: 7),
);

// ---------------------------------------------------------------------
// Regex-literal string strategies
// ---------------------------------------------------------------------

/// One unit of a parsed pattern: a character pool and a repeat range.
struct PatternUnit {
    pool: Vec<char>,
    min: usize,
    max: usize,
}

/// Pool used for `.`: printable ASCII plus a few multibyte characters
/// so "never panics" tests see non-trivial UTF-8.
fn dot_pool() -> Vec<char> {
    let mut pool: Vec<char> = (0x20u8..0x7f).map(char::from).collect();
    pool.extend(['é', 'Ω', '☃', '\u{7f}']);
    pool
}

/// Parses the tiny regex subset the tests use: literal characters,
/// `.`, `[a-z0-9_]`-style classes, and `{m}` / `{m,n}` repetitions.
fn parse_pattern(pattern: &str) -> Vec<PatternUnit> {
    let chars: Vec<char> = pattern.chars().collect();
    let mut units = Vec::new();
    let mut i = 0;
    while i < chars.len() {
        let pool = match chars[i] {
            '.' => {
                i += 1;
                dot_pool()
            }
            '[' => {
                i += 1;
                let mut pool = Vec::new();
                while i < chars.len() && chars[i] != ']' {
                    if i + 2 < chars.len() && chars[i + 1] == '-' && chars[i + 2] != ']' {
                        let (lo, hi) = (chars[i], chars[i + 2]);
                        assert!(lo <= hi, "bad class range in {pattern}");
                        pool.extend(lo..=hi);
                        i += 3;
                    } else {
                        pool.push(chars[i]);
                        i += 1;
                    }
                }
                assert!(i < chars.len(), "unterminated class in {pattern}");
                i += 1; // consume ']'
                pool
            }
            '\\' => {
                i += 1;
                assert!(i < chars.len(), "trailing backslash in {pattern}");
                let c = chars[i];
                i += 1;
                vec![c]
            }
            c => {
                i += 1;
                vec![c]
            }
        };
        let (min, max) = if i < chars.len() && chars[i] == '{' {
            i += 1;
            let mut digits = String::new();
            while i < chars.len() && chars[i].is_ascii_digit() {
                digits.push(chars[i]);
                i += 1;
            }
            let min: usize = digits.parse().expect("repeat count");
            let max = if i < chars.len() && chars[i] == ',' {
                i += 1;
                let mut digits = String::new();
                while i < chars.len() && chars[i].is_ascii_digit() {
                    digits.push(chars[i]);
                    i += 1;
                }
                digits.parse().expect("repeat bound")
            } else {
                min
            };
            assert!(
                i < chars.len() && chars[i] == '}',
                "unterminated repeat in {pattern}"
            );
            i += 1;
            (min, max)
        } else {
            (1, 1)
        };
        assert!(!pool.is_empty(), "empty character pool in {pattern}");
        units.push(PatternUnit { pool, min, max });
    }
    units
}

impl Strategy for &'static str {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for unit in parse_pattern(self) {
            let count = unit.min + rng.below((unit.max - unit.min + 1) as u64) as usize;
            for _ in 0..count {
                out.push(unit.pool[rng.below(unit.pool.len() as u64) as usize]);
            }
        }
        out
    }
}

// ---------------------------------------------------------------------
// prop:: submodules
// ---------------------------------------------------------------------

/// Namespaced strategy constructors (mirrors `proptest::prop`).
pub mod prop {
    /// Sampling strategies.
    pub mod sample {
        use crate::{Arbitrary, FnStrategy, Strategy, TestRng};
        use std::fmt::Debug;

        /// Strategy choosing one of the given options.
        #[derive(Clone, Debug)]
        pub struct Select<T> {
            options: Vec<T>,
        }

        /// Chooses uniformly from `options` (must be non-empty).
        pub fn select<T: Clone + Debug + 'static>(options: Vec<T>) -> Select<T> {
            assert!(!options.is_empty(), "select() needs options");
            Select { options }
        }

        impl<T: Clone + Debug + 'static> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                self.options[rng.below(self.options.len() as u64) as usize].clone()
            }
        }

        /// An index that can be projected onto any non-empty collection.
        #[derive(Clone, Copy, Debug)]
        pub struct Index(usize);

        impl Index {
            /// Maps this abstract index onto `len` concrete slots.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "Index::index on empty collection");
                self.0 % len
            }
        }

        impl Arbitrary for Index {
            type Strategy = FnStrategy<Index>;

            fn arbitrary() -> FnStrategy<Index> {
                FnStrategy(|rng| Index(rng.next_u64() as usize))
            }
        }
    }

    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::collections::BTreeMap;
        use std::fmt::Debug;
        use std::ops::Range;

        /// A size specification for generated collections.
        #[derive(Clone, Debug)]
        pub struct SizeRange {
            min: usize,
            /// Exclusive upper bound.
            max: usize,
        }

        impl From<Range<usize>> for SizeRange {
            fn from(range: Range<usize>) -> Self {
                assert!(range.start < range.end, "empty collection size range");
                SizeRange {
                    min: range.start,
                    max: range.end,
                }
            }
        }

        impl From<usize> for SizeRange {
            fn from(exact: usize) -> Self {
                SizeRange {
                    min: exact,
                    max: exact + 1,
                }
            }
        }

        impl SizeRange {
            fn sample(&self, rng: &mut TestRng) -> usize {
                self.min + rng.below((self.max - self.min) as u64) as usize
            }
        }

        /// Strategy producing vectors of generated elements.
        #[derive(Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        /// Generates `Vec`s whose length falls in `size`.
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let len = self.size.sample(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// Strategy producing maps of generated keys and values.
        #[derive(Clone)]
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: SizeRange,
        }

        /// Generates `BTreeMap`s whose size falls in `size` (duplicate
        /// keys permitting).
        pub fn btree_map<K, V>(
            key: K,
            value: V,
            size: impl Into<SizeRange>,
        ) -> BTreeMapStrategy<K, V>
        where
            K: Strategy,
            V: Strategy,
            K::Value: Ord,
        {
            BTreeMapStrategy {
                key,
                value,
                size: size.into(),
            }
        }

        impl<K, V> Strategy for BTreeMapStrategy<K, V>
        where
            K: Strategy,
            V: Strategy,
            K::Value: Ord + Debug,
        {
            type Value = BTreeMap<K::Value, V::Value>;

            fn generate(&self, rng: &mut TestRng) -> BTreeMap<K::Value, V::Value> {
                let target = self.size.sample(rng);
                let mut map = BTreeMap::new();
                // Duplicate keys shrink the map; bounded retries refill.
                for _ in 0..target.saturating_mul(4).max(target) {
                    if map.len() >= target {
                        break;
                    }
                    map.insert(self.key.generate(rng), self.value.generate(rng));
                }
                map
            }
        }
    }
}

// ---------------------------------------------------------------------
// Test runner
// ---------------------------------------------------------------------

/// Per-test configuration.
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64 }
    }
}

/// Failure raised by the `prop_assert*` macros.
#[derive(Debug)]
pub struct TestCaseError(pub String);

/// Result type of one generated case.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Runs `case` for every generated case of a test. The closure fills
/// `desc` with the generated inputs before running the body, so both
/// assertion failures and panics can report them.
pub fn run_cases<F>(config: ProptestConfig, name: &str, mut case: F)
where
    F: FnMut(&mut TestRng, &mut String) -> TestCaseResult,
{
    let seed = fnv1a(name.as_bytes());
    for index in 0..config.cases {
        let mut rng = TestRng::for_case(seed, index);
        let mut desc = String::new();
        let outcome = catch_unwind(AssertUnwindSafe(|| case(&mut rng, &mut desc)));
        match outcome {
            Ok(Ok(())) => {}
            Ok(Err(error)) => panic!(
                "proptest `{name}` failed at case {index}/{}: {}\n  inputs: {desc}",
                config.cases, error.0
            ),
            Err(panic) => {
                eprintln!(
                    "proptest `{name}` panicked at case {index}/{}\n  inputs: {desc}",
                    config.cases
                );
                resume_unwind(panic);
            }
        }
    }
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Re-exports matching `proptest::prelude`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
        Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy, TestCaseError, TestCaseResult,
    };
}

// ---------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------

/// Asserts a condition inside a proptest body, reporting the generated
/// inputs on failure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` != `{:?}`",
            __left,
            __right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left == *__right,
            "assertion failed: `{:?}` != `{:?}`: {}",
            __left,
            __right,
            format!($($fmt)+)
        );
    }};
}

/// Asserts inequality inside a proptest body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (__left, __right) = (&$left, &$right);
        $crate::prop_assert!(
            *__left != *__right,
            "assertion failed: `{:?}` == `{:?}`",
            __left,
            __right
        );
    }};
}

/// Skips the current case when its inputs don't satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Chooses among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strategy)),+])
    };
}

/// Declares property tests; mirrors `proptest::proptest!`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ::core::default::Default::default(); $($rest)* }
    };
}

/// Implementation detail of [`proptest!`].
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($config:expr; $(
        #[test]
        fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        #[test]
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            $crate::run_cases(config, stringify!($name), |__rng, __desc| {
                $(let $arg = $crate::Strategy::generate(&($strategy), __rng);)+
                *__desc = format!(
                    concat!($(stringify!($arg), " = {:?}  "),+),
                    $(&$arg),+
                );
                #[allow(clippy::redundant_closure_call)]
                (|| -> $crate::TestCaseResult {
                    $body
                    ::core::result::Result::Ok(())
                })()
            });
        }
    )*};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn pattern_generation_respects_class_and_length() {
        let mut rng = crate::TestRng::for_case(7, 0);
        for _ in 0..200 {
            let value = crate::Strategy::generate(&"[a-z][a-z0-9]{0,6}", &mut rng);
            assert!(!value.is_empty() && value.len() <= 7, "{value:?}");
            assert!(value.chars().next().unwrap().is_ascii_lowercase());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case(9, 1);
        for _ in 0..500 {
            let v = crate::Strategy::generate(&(-10i64..10), &mut rng);
            assert!((-10..10).contains(&v));
            let u = crate::Strategy::generate(&(0u8..=9), &mut rng);
            assert!(u <= 9);
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn the_macro_itself_works(v in 0u64..100, flag in any::<bool>()) {
            prop_assume!(v != 99);
            prop_assert!(v < 100, "v was {}", v);
            if flag {
                prop_assert_eq!(v + 1, 1 + v);
            }
        }
    }
}
