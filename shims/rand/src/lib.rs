//! Offline stand-in for the `rand` crate.
//!
//! The workspace declares `rand` but nothing in the tree imports it (the
//! simulator carries its own deterministic `SimRng`). This empty shim
//! satisfies the dependency graph without network access.
