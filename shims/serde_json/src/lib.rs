//! Offline stand-in for `serde_json`, targeting the companion `serde`
//! shim's content tree.
//!
//! Provides exactly the workspace surface: [`to_writer`] / [`to_string`]
//! and [`from_str`]. Integers are written as raw decimal text (so
//! `u64::MAX`-adjacent ids survive a round trip bit-for-bit), strings
//! are escaped per RFC 8259, and byte buffers become arrays of numbers.

use serde::{de::DeserializeOwned, Content, Serialize};
use std::fmt::{self, Display, Write as _};

/// Error raised while encoding or decoding JSON.
#[derive(Debug)]
pub struct Error {
    message: String,
}

impl Error {
    fn new(message: impl Into<String>) -> Self {
        Error {
            message: message.into(),
        }
    }
}

impl Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

/// Result alias matching `serde_json::Result`.
pub type Result<T> = std::result::Result<T, Error>;

/// Serializes `value` as compact JSON into `writer`.
pub fn to_writer<W: std::io::Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let text = to_string(value)?;
    writer
        .write_all(text.as_bytes())
        .map_err(|e| Error::new(format!("io error: {e}")))
}

/// Serializes `value` as a compact JSON string.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    write_content(&serde::to_content(value), &mut out)?;
    Ok(out)
}

/// Deserializes a value from a JSON string.
pub fn from_str<T: DeserializeOwned>(input: &str) -> Result<T> {
    let mut parser = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    parser.skip_whitespace();
    let content = parser.parse_value()?;
    parser.skip_whitespace();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            parser.pos
        )));
    }
    serde::from_content(content).map_err(|e| Error::new(e.0))
}

// ---------------------------------------------------------------------
// Writing
// ---------------------------------------------------------------------

fn write_content(content: &Content, out: &mut String) -> Result<()> {
    match content {
        Content::Null => out.push_str("null"),
        Content::Bool(true) => out.push_str("true"),
        Content::Bool(false) => out.push_str("false"),
        Content::U64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::I64(v) => {
            let _ = write!(out, "{v}");
        }
        Content::F64(v) => {
            if v.is_finite() {
                // Mirror serde_json: always re-parseable as a float.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    let _ = write!(out, "{v:.1}");
                } else {
                    let _ = write!(out, "{v}");
                }
            } else {
                out.push_str("null");
            }
        }
        Content::Str(text) => write_string(text, out),
        Content::Bytes(bytes) => {
            out.push('[');
            for (i, byte) in bytes.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                let _ = write!(out, "{byte}");
            }
            out.push(']');
        }
        Content::Seq(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_content(item, out)?;
            }
            out.push(']');
        }
        Content::Map(pairs) => {
            out.push('{');
            for (i, (key, value)) in pairs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                match key {
                    Content::Str(name) => write_string(name, out),
                    other => {
                        return Err(Error::new(format!(
                            "map key must be a string, got {other:?}"
                        )))
                    }
                }
                out.push(':');
                write_content(value, out)?;
            }
            out.push('}');
        }
    }
    Ok(())
}

fn write_string(text: &str, out: &mut String) {
    out.push('"');
    for c in text.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            '\u{08}' => out.push_str("\\b"),
            '\u{0c}' => out.push_str("\\f"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_whitespace(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, byte: u8) -> Result<()> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                byte as char, self.pos
            )))
        }
    }

    fn consume_literal(&mut self, literal: &str) -> bool {
        if self.bytes[self.pos..].starts_with(literal.as_bytes()) {
            self.pos += literal.len();
            true
        } else {
            false
        }
    }

    fn parse_value(&mut self) -> Result<Content> {
        self.skip_whitespace();
        match self.peek() {
            Some(b'n') if self.consume_literal("null") => Ok(Content::Null),
            Some(b't') if self.consume_literal("true") => Ok(Content::Bool(true)),
            Some(b'f') if self.consume_literal("false") => Ok(Content::Bool(false)),
            Some(b'"') => self.parse_string().map(Content::Str),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-') | Some(b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at offset {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_array(&mut self) -> Result<Content> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Content::Seq(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Content::Seq(items));
                }
                _ => return Err(Error::new(format!("bad array at offset {}", self.pos))),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Content> {
        self.expect(b'{')?;
        let mut pairs = Vec::new();
        self.skip_whitespace();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Content::Map(pairs));
        }
        loop {
            self.skip_whitespace();
            let key = self.parse_string()?;
            self.skip_whitespace();
            self.expect(b':')?;
            let value = self.parse_value()?;
            pairs.push((Content::Str(key), value));
            self.skip_whitespace();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Content::Map(pairs));
                }
                _ => return Err(Error::new(format!("bad object at offset {}", self.pos))),
            }
        }
    }

    fn parse_string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain UTF-8 up to a quote or escape.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{08}'),
                        Some(b'f') => out.push('\u{0c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let high = self.parse_hex4()?;
                            let code = if (0xd800..0xdc00).contains(&high) {
                                // Surrogate pair: expect \uXXXX low half.
                                if !self.consume_literal("\\u") {
                                    return Err(Error::new("unpaired surrogate"));
                                }
                                let low = self.parse_hex4()?;
                                0x10000 + ((high - 0xd800) << 10) + (low - 0xdc00)
                            } else {
                                high
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u escape"))?,
                            );
                            continue;
                        }
                        other => {
                            return Err(Error::new(format!(
                                "bad escape {:?} at offset {}",
                                other.map(|b| b as char),
                                self.pos
                            )))
                        }
                    }
                    self.pos += 1;
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| Error::new("bad \\u escape"))?;
        let value =
            u32::from_str_radix(hex, 16).map_err(|_| Error::new("bad \\u escape digits"))?;
        self.pos = end;
        Ok(value)
    }

    fn parse_number(&mut self) -> Result<Content> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .expect("ASCII digits are valid UTF-8");
        if is_float {
            text.parse::<f64>()
                .map(Content::F64)
                .map_err(|_| Error::new(format!("bad number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Content::I64)
                .map_err(|_| Error::new(format!("bad integer `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Content::U64)
                .map_err(|_| Error::new(format!("bad integer `{text}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_u64_max() {
        let text = to_string(&u64::MAX).unwrap();
        assert_eq!(text, "18446744073709551615");
        let back: u64 = from_str(&text).unwrap();
        assert_eq!(back, u64::MAX);
    }

    #[test]
    fn round_trips_nested_values() {
        let value: Vec<Option<i64>> = vec![Some(-3), None, Some(7)];
        let text = to_string(&value).unwrap();
        assert_eq!(text, "[-3,null,7]");
        let back: Vec<Option<i64>> = from_str(&text).unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn escapes_strings() {
        let text = to_string(&"a\"b\\c\nd".to_string()).unwrap();
        assert_eq!(text, r#""a\"b\\c\nd""#);
        let back: String = from_str(&text).unwrap();
        assert_eq!(back, "a\"b\\c\nd");
    }

    #[test]
    fn parses_unicode_escapes() {
        let back: String = from_str(r#""A😀""#).unwrap();
        assert_eq!(back, "A😀");
    }
}
