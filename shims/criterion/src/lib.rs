//! Offline stand-in for `criterion` with real wall-clock measurement.
//!
//! Implements the subset of the Criterion API the bench targets use
//! (`benchmark_group`, `throughput`, `bench_function`, the `iter*`
//! family, and the `criterion_group!`/`criterion_main!` macros). Each
//! benchmark is auto-calibrated to a target sample time, then measured
//! over `sample_size` samples; median and min/max per-iteration times
//! plus derived element throughput are printed in a Criterion-like
//! format. There is no warm-up phase beyond calibration and no
//! statistical outlier analysis — numbers are honest but simpler.

use std::fmt::Write as _;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Target wall-clock time for one measured sample.
const TARGET_SAMPLE_TIME: Duration = Duration::from_millis(60);

/// Opaque value barrier, re-exported for benchmark code.
pub fn black_box<T>(value: T) -> T {
    std_black_box(value)
}

/// Units for derived throughput reporting.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// The routine processes this many logical elements per iteration.
    Elements(u64),
    /// The routine processes this many bytes per iteration.
    Bytes(u64),
}

/// Hint for how `iter_batched` amortises setup cost. The shim times
/// every routine invocation individually, so the hint is accepted and
/// ignored.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small per-iteration inputs.
    SmallInput,
    /// Large per-iteration inputs.
    LargeInput,
    /// One input per batch.
    PerIteration,
}

/// Entry point handed to benchmark functions.
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Applies command-line configuration (accepted, ignored).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("\n{name}");
        BenchmarkGroup {
            _parent: self,
            name,
            throughput: None,
            sample_size: 20,
        }
    }
}

/// A group of benchmarks sharing a name prefix and throughput setting.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured samples per benchmark.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples.max(2);
        self
    }

    /// Declares how much work one iteration performs.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark and prints its timing line.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: Vec::new(),
            sample_size: self.sample_size,
        };
        body(&mut bencher);
        let line = report(&bencher.samples, self.throughput);
        println!("  {}/{id:<24} {line}", self.name);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// Collects per-iteration timings for one benchmark.
pub struct Bencher {
    /// Mean seconds per iteration, one entry per sample.
    samples: Vec<f64>,
    sample_size: usize,
}

impl Bencher {
    /// Times `routine` repeatedly.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        // Calibrate: how many iterations fill the target sample time?
        let start = Instant::now();
        std_black_box(routine());
        let once = start.elapsed().max(Duration::from_nanos(20));
        let per_sample =
            (TARGET_SAMPLE_TIME.as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                std_black_box(routine());
            }
            let elapsed = start.elapsed();
            self.samples.push(elapsed.as_secs_f64() / per_sample as f64);
        }
    }

    /// Times `routine` on fresh inputs built by `setup` (setup untimed).
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        for _ in 0..self.sample_size {
            let input = setup();
            let start = Instant::now();
            std_black_box(routine(input));
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }

    /// Like [`Bencher::iter_batched`] but hands the routine `&mut I`.
    pub fn iter_batched_ref<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(&mut I) -> O,
    {
        for _ in 0..self.sample_size {
            let mut input = setup();
            let start = Instant::now();
            std_black_box(routine(&mut input));
            self.samples.push(start.elapsed().as_secs_f64());
        }
    }
}

fn report(samples: &[f64], throughput: Option<Throughput>) -> String {
    if samples.is_empty() {
        return "no samples".to_string();
    }
    let mut sorted = samples.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite timings"));
    let median = sorted[sorted.len() / 2];
    let min = sorted[0];
    let max = sorted[sorted.len() - 1];
    let mut line = format!(
        "time: [{} {} {}]",
        format_time(min),
        format_time(median),
        format_time(max)
    );
    match throughput {
        Some(Throughput::Elements(elements)) => {
            let _ = write!(
                &mut line,
                "  thrpt: {} elem/s",
                format_rate(elements as f64 / median)
            );
        }
        Some(Throughput::Bytes(bytes)) => {
            let _ = write!(
                &mut line,
                "  thrpt: {}B/s",
                format_rate(bytes as f64 / median)
            );
        }
        None => {}
    }
    line
}

fn format_time(seconds: f64) -> String {
    if seconds < 1e-6 {
        format!("{:.2} ns", seconds * 1e9)
    } else if seconds < 1e-3 {
        format!("{:.2} µs", seconds * 1e6)
    } else if seconds < 1.0 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{seconds:.3} s")
    }
}

fn format_rate(per_second: f64) -> String {
    if per_second >= 1e9 {
        format!("{:.3} G", per_second / 1e9)
    } else if per_second >= 1e6 {
        format!("{:.3} M", per_second / 1e6)
    } else if per_second >= 1e3 {
        format!("{:.3} K", per_second / 1e3)
    } else {
        format!("{per_second:.1} ")
    }
}

/// Declares the benchmark entry list, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main`, mirroring Criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
