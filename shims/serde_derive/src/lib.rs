//! Offline stand-in for `serde_derive`: hand-written `Serialize` /
//! `Deserialize` derives with no `syn`/`quote` dependency.
//!
//! A tiny token-tree parser extracts just what the companion `serde`
//! shim's content model needs — item kind, name, field/variant names,
//! and `#[serde(with = "path")]` / `#[serde(default)]` attributes — and
//! the impls are emitted
//! as source text. Supported shapes: non-generic structs (named, tuple,
//! unit) and enums (unit, tuple, struct variants). That covers every
//! derive site in this workspace; anything fancier fails loudly at
//! compile time rather than silently misbehaving.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field: its name (`None` for tuple fields), the module
/// path from a `#[serde(with = "…")]` attribute, if any, and whether
/// `#[serde(default)]` lets the field be absent on deserialize.
struct Field {
    name: Option<String>,
    with: Option<String>,
    default: bool,
}

/// Field-level serde options the shim understands.
#[derive(Default)]
struct FieldAttrs {
    with: Option<String>,
    default: bool,
}

/// One parsed enum variant.
struct Variant {
    name: String,
    kind: VariantKind,
}

enum VariantKind {
    Unit,
    Tuple(Vec<Field>),
    Named(Vec<Field>),
}

/// The parsed item.
enum Item {
    StructNamed(String, Vec<Field>),
    StructTuple(String, Vec<Field>),
    StructUnit(String),
    Enum(String, Vec<Variant>),
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_serialize(&item)
        .parse()
        .expect("generated impl parses")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    emit_deserialize(&item)
        .parse()
        .expect("generated impl parses")
}

// ---------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------

struct Cursor {
    tokens: Vec<TokenTree>,
    index: usize,
}

impl Cursor {
    fn new(stream: TokenStream) -> Self {
        Cursor {
            tokens: stream.into_iter().collect(),
            index: 0,
        }
    }

    fn peek(&self) -> Option<&TokenTree> {
        self.tokens.get(self.index)
    }

    fn next(&mut self) -> Option<TokenTree> {
        let token = self.tokens.get(self.index).cloned();
        if token.is_some() {
            self.index += 1;
        }
        token
    }

    fn at_end(&self) -> bool {
        self.index >= self.tokens.len()
    }

    /// Skips `#[…]` attribute groups, collecting any `with = "path"` or
    /// `default` options found inside `#[serde(…)]` attributes.
    fn skip_attrs(&mut self) -> FieldAttrs {
        let mut attrs = FieldAttrs::default();
        while let Some(TokenTree::Punct(p)) = self.peek() {
            if p.as_char() != '#' {
                break;
            }
            self.next();
            let Some(TokenTree::Group(group)) = self.next() else {
                panic!("expected attribute body after `#`");
            };
            assert_eq!(group.delimiter(), Delimiter::Bracket, "attribute brackets");
            let mut inner = Cursor::new(group.stream());
            if let Some(TokenTree::Ident(name)) = inner.peek() {
                if name.to_string() == "serde" {
                    inner.next();
                    if let Some(TokenTree::Group(args)) = inner.next() {
                        let parsed = parse_serde_args(args.stream());
                        attrs.with = parsed.with.or(attrs.with);
                        attrs.default |= parsed.default;
                    }
                }
            }
        }
        attrs
    }

    /// Skips `pub` / `pub(crate)` visibility qualifiers.
    fn skip_visibility(&mut self) {
        if let Some(TokenTree::Ident(ident)) = self.peek() {
            if ident.to_string() == "pub" {
                self.next();
                if let Some(TokenTree::Group(group)) = self.peek() {
                    if group.delimiter() == Delimiter::Parenthesis {
                        self.next();
                    }
                }
            }
        }
    }

    /// Consumes type tokens up to a top-level comma (tracking `<…>`
    /// nesting; `->` is recognised so its `>` is not miscounted).
    fn skip_type(&mut self) {
        let mut angle_depth = 0i32;
        while let Some(token) = self.peek() {
            match token {
                TokenTree::Punct(p) => {
                    let c = p.as_char();
                    if c == ',' && angle_depth == 0 {
                        return;
                    }
                    if c == '<' {
                        angle_depth += 1;
                    } else if c == '>' {
                        angle_depth -= 1;
                    } else if c == '-' {
                        // A `->` in an fn type: swallow the `>` too.
                        self.next();
                        if let Some(TokenTree::Punct(q)) = self.peek() {
                            if q.as_char() == '>' {
                                self.next();
                            }
                        }
                        continue;
                    }
                    self.next();
                }
                _ => {
                    self.next();
                }
            }
        }
    }

    fn expect_comma_or_end(&mut self) {
        match self.next() {
            None => {}
            Some(TokenTree::Punct(p)) if p.as_char() == ',' => {}
            Some(other) => panic!("expected `,` between items, found `{other}`"),
        }
    }
}

fn parse_serde_args(stream: TokenStream) -> FieldAttrs {
    let mut cursor = Cursor::new(stream);
    let mut attrs = FieldAttrs::default();
    while let Some(token) = cursor.next() {
        if let TokenTree::Ident(ident) = &token {
            match ident.to_string().as_str() {
                "with" => match (cursor.next(), cursor.next()) {
                    (Some(TokenTree::Punct(eq)), Some(TokenTree::Literal(path)))
                        if eq.as_char() == '=' =>
                    {
                        let text = path.to_string();
                        attrs.with = Some(text.trim_matches('"').to_string());
                    }
                    _ => panic!("malformed #[serde(with = \"…\")] attribute"),
                },
                "default" => attrs.default = true,
                other => panic!("unsupported #[serde({other})] attribute in offline shim"),
            }
        }
    }
    attrs
}

fn parse_item(input: TokenStream) -> Item {
    let mut cursor = Cursor::new(input);
    cursor.skip_attrs();
    cursor.skip_visibility();
    let keyword = match cursor.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected `struct` or `enum`, found {other:?}"),
    };
    let name = match cursor.next() {
        Some(TokenTree::Ident(ident)) => ident.to_string(),
        other => panic!("expected item name, found {other:?}"),
    };
    if let Some(TokenTree::Punct(p)) = cursor.peek() {
        if p.as_char() == '<' {
            panic!("offline serde derive does not support generic type `{name}`");
        }
    }
    match keyword.as_str() {
        "struct" => match cursor.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Item::StructNamed(name, parse_named_fields(group.stream()))
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                Item::StructTuple(name, parse_tuple_fields(group.stream()))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => Item::StructUnit(name),
            other => panic!("unsupported struct body for `{name}`: {other:?}"),
        },
        "enum" => match cursor.next() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                Item::Enum(name, parse_variants(group.stream()))
            }
            other => panic!("unsupported enum body for `{name}`: {other:?}"),
        },
        other => panic!("cannot derive serde impls for `{other}`"),
    }
}

fn parse_named_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cursor.at_end() {
        let attrs = cursor.skip_attrs();
        cursor.skip_visibility();
        let field_name = match cursor.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => panic!("expected field name, found {other:?}"),
        };
        match cursor.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("expected `:` after field `{field_name}`, found {other:?}"),
        }
        cursor.skip_type();
        cursor.expect_comma_or_end();
        fields.push(Field {
            name: Some(field_name),
            with: attrs.with,
            default: attrs.default,
        });
    }
    fields
}

fn parse_tuple_fields(stream: TokenStream) -> Vec<Field> {
    let mut cursor = Cursor::new(stream);
    let mut fields = Vec::new();
    while !cursor.at_end() {
        let attrs = cursor.skip_attrs();
        cursor.skip_visibility();
        cursor.skip_type();
        cursor.expect_comma_or_end();
        fields.push(Field {
            name: None,
            with: attrs.with,
            default: attrs.default,
        });
    }
    fields
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut cursor = Cursor::new(stream);
    let mut variants = Vec::new();
    while !cursor.at_end() {
        cursor.skip_attrs();
        let name = match cursor.next() {
            Some(TokenTree::Ident(ident)) => ident.to_string(),
            other => panic!("expected variant name, found {other:?}"),
        };
        let kind = match cursor.peek() {
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Parenthesis => {
                let fields = parse_tuple_fields(group.stream());
                cursor.next();
                VariantKind::Tuple(fields)
            }
            Some(TokenTree::Group(group)) if group.delimiter() == Delimiter::Brace => {
                let fields = parse_named_fields(group.stream());
                cursor.next();
                VariantKind::Named(fields)
            }
            _ => VariantKind::Unit,
        };
        cursor.expect_comma_or_end();
        variants.push(Variant { name, kind });
    }
    variants
}

// ---------------------------------------------------------------------
// Code generation
// ---------------------------------------------------------------------

/// `to_content`-style expression for one field, honouring `with` paths.
fn ser_expr(reference: &str, field: &Field) -> String {
    match &field.with {
        Some(path) => format!(
            "match {path}::serialize({reference}, ::serde::ContentCapture) {{ \
             ::core::result::Result::Ok(c) => c, \
             ::core::result::Result::Err(e) => match e {{}} }}"
        ),
        None => format!("::serde::to_content({reference})"),
    }
}

/// `from_content`-style expression for one field, honouring `with`
/// paths. Evaluates inside a closure returning `ContentError`.
fn de_expr(content: &str, field: &Field) -> String {
    match &field.with {
        Some(path) => {
            format!("{path}::deserialize(::serde::ContentDeserializer::new({content}))?")
        }
        None => format!("::serde::from_content({content})?"),
    }
}

/// `de_expr` for a named struct field, honouring `#[serde(default)]`:
/// an absent field deserializes as `Default::default()`.
fn named_de_expr(field: &Field) -> String {
    let name = field.name.as_deref().expect("named field");
    if field.default {
        format!(
            "match __fields.take_opt(\"{name}\") {{ \
             ::core::option::Option::Some(__c) => {}, \
             ::core::option::Option::None => ::core::default::Default::default() }}",
            de_expr("__c", field)
        )
    } else {
        de_expr(&format!("__fields.take(\"{name}\")?"), field)
    }
}

fn emit_serialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::StructNamed(name, fields) => {
            let entries: Vec<String> = fields
                .iter()
                .map(|f| {
                    let field = f.name.as_deref().expect("named field");
                    format!(
                        "(::serde::Content::Str(\"{field}\".to_string()), {})",
                        ser_expr(&format!("&self.{field}"), f)
                    )
                })
                .collect();
            (
                name,
                format!(
                    "serializer.serialize_content(::serde::Content::Map(vec![{}]))",
                    entries.join(", ")
                ),
            )
        }
        Item::StructTuple(name, fields) if fields.len() == 1 => (
            name,
            format!(
                "serializer.serialize_content({})",
                ser_expr("&self.0", &fields[0])
            ),
        ),
        Item::StructTuple(name, fields) => {
            let entries: Vec<String> = fields
                .iter()
                .enumerate()
                .map(|(i, f)| ser_expr(&format!("&self.{i}"), f))
                .collect();
            (
                name,
                format!(
                    "serializer.serialize_content(::serde::Content::Seq(vec![{}]))",
                    entries.join(", ")
                ),
            )
        }
        Item::StructUnit(name) => (
            name,
            "serializer.serialize_content(::serde::Content::Null)".to_string(),
        ),
        Item::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| {
                    let vname = &variant.name;
                    match &variant.kind {
                        VariantKind::Unit => format!(
                            "{name}::{vname} => serializer.serialize_content(\
                             ::serde::Content::Str(\"{vname}\".to_string())),"
                        ),
                        VariantKind::Tuple(fields) => {
                            let binders: Vec<String> =
                                (0..fields.len()).map(|i| format!("__f{i}")).collect();
                            let payload = if fields.len() == 1 {
                                ser_expr("__f0", &fields[0])
                            } else {
                                let items: Vec<String> = fields
                                    .iter()
                                    .enumerate()
                                    .map(|(i, f)| ser_expr(&format!("__f{i}"), f))
                                    .collect();
                                format!("::serde::Content::Seq(vec![{}])", items.join(", "))
                            };
                            format!(
                                "{name}::{vname}({binders}) => \
                                 serializer.serialize_content(::serde::Content::Map(vec![\
                                 (::serde::Content::Str(\"{vname}\".to_string()), {payload})])),",
                                binders = binders.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let binders: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let field = f.name.as_deref().expect("named field");
                                    format!("{field}: __f_{field}")
                                })
                                .collect();
                            let entries: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let field = f.name.as_deref().expect("named field");
                                    format!(
                                        "(::serde::Content::Str(\"{field}\".to_string()), {})",
                                        ser_expr(&format!("__f_{field}"), f)
                                    )
                                })
                                .collect();
                            format!(
                                "{name}::{vname} {{ {binders} }} => \
                                 serializer.serialize_content(::serde::Content::Map(vec![\
                                 (::serde::Content::Str(\"{vname}\".to_string()), \
                                 ::serde::Content::Map(vec![{entries}]))])),",
                                binders = binders.join(", "),
                                entries = entries.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (name, format!("match self {{ {} }}", arms.join(" ")))
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl ::serde::Serialize for {name} {{\n\
             fn serialize<S: ::serde::Serializer>(&self, serializer: S)\n\
                 -> ::core::result::Result<S::Ok, S::Error> {{\n\
                 {body}\n\
             }}\n\
         }}\n"
    )
}

fn emit_deserialize(item: &Item) -> String {
    let (name, body) = match item {
        Item::StructNamed(name, fields) => {
            let inits: Vec<String> = fields
                .iter()
                .map(|f| {
                    let field = f.name.as_deref().expect("named field");
                    format!("{field}: {}", named_de_expr(f))
                })
                .collect();
            (
                name,
                format!(
                    "let mut __fields = ::serde::FieldMap::from_content(__content, \"{name}\")?;\n\
                     ::core::result::Result::Ok({name} {{ {} }})",
                    inits.join(", ")
                ),
            )
        }
        Item::StructTuple(name, fields) if fields.len() == 1 => (
            name,
            format!(
                "::core::result::Result::Ok({name}({}))",
                de_expr("__content", &fields[0])
            ),
        ),
        Item::StructTuple(name, fields) => {
            let len = fields.len();
            let inits: Vec<String> = fields
                .iter()
                .map(|f| de_expr("__items.next().expect(\"length checked\")", f))
                .collect();
            (
                name,
                format!(
                    "let mut __items = ::serde::seq_parts(__content, {len}, \"{name}\")?\
                     .into_iter();\n\
                     ::core::result::Result::Ok({name}({}))",
                    inits.join(", ")
                ),
            )
        }
        Item::StructUnit(name) => (name, format!("::core::result::Result::Ok({name})")),
        Item::Enum(name, variants) => {
            let arms: Vec<String> = variants
                .iter()
                .map(|variant| {
                    let vname = &variant.name;
                    match &variant.kind {
                        VariantKind::Unit => {
                            format!("\"{vname}\" => ::core::result::Result::Ok({name}::{vname}),")
                        }
                        VariantKind::Tuple(fields) if fields.len() == 1 => format!(
                            "\"{vname}\" => ::core::result::Result::Ok({name}::{vname}({})),",
                            de_expr("__payload", &fields[0])
                        ),
                        VariantKind::Tuple(fields) => {
                            let len = fields.len();
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| de_expr("__items.next().expect(\"length checked\")", f))
                                .collect();
                            format!(
                                "\"{vname}\" => {{ let mut __items = ::serde::seq_parts(\
                                 __payload, {len}, \"{name}::{vname}\")?.into_iter(); \
                                 ::core::result::Result::Ok({name}::{vname}({})) }}",
                                inits.join(", ")
                            )
                        }
                        VariantKind::Named(fields) => {
                            let inits: Vec<String> = fields
                                .iter()
                                .map(|f| {
                                    let field = f.name.as_deref().expect("named field");
                                    format!("{field}: {}", named_de_expr(f))
                                })
                                .collect();
                            format!(
                                "\"{vname}\" => {{ let mut __fields = \
                                 ::serde::FieldMap::from_content(__payload, \
                                 \"{name}::{vname}\")?; \
                                 ::core::result::Result::Ok({name}::{vname} {{ {} }}) }}",
                                inits.join(", ")
                            )
                        }
                    }
                })
                .collect();
            (
                name,
                format!(
                    "let (__variant, __payload) = ::serde::enum_parts(__content, \"{name}\")?;\n\
                     match __variant.as_str() {{ {} __other => \
                     ::core::result::Result::Err(::serde::ContentError(format!(\
                     \"unknown variant `{{}}` of {name}\", __other))) }}",
                    arms.join(" ")
                ),
            )
        }
    };
    format!(
        "#[automatically_derived]\n\
         #[allow(warnings, clippy::all)]\n\
         impl<'de> ::serde::Deserialize<'de> for {name} {{\n\
             fn deserialize<D: ::serde::Deserializer<'de>>(deserializer: D)\n\
                 -> ::core::result::Result<Self, D::Error> {{\n\
                 let __content = ::serde::Deserializer::take_content(deserializer)?;\n\
                 let __result = (|| -> ::core::result::Result<Self, ::serde::ContentError> {{\n\
                     {body}\n\
                 }})();\n\
                 __result.map_err(|e| <D::Error as ::serde::de::Error>::custom(e))\n\
             }}\n\
         }}\n"
    )
}
