//! Offline stand-in for the `crossbeam` crate.
//!
//! The workspace declares `crossbeam` but the container has no network
//! access to crates.io, so this empty shim satisfies the dependency
//! graph. Nothing in the tree currently imports `crossbeam` items; add
//! re-implementations here the day something does.
