//! Offline stand-in for the `parking_lot` crate, layered over
//! `std::sync`.
//!
//! Matches the parking_lot API the workspace uses: non-poisoning
//! `Mutex`/`RwLock` whose `lock()`/`read()`/`write()` return guards
//! directly, and a `Condvar` whose `wait_for` takes the guard by
//! `&mut`. Poisoned std locks are recovered transparently (parking_lot
//! has no poisoning, so neither do we).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::{self, TryLockError};
use std::time::Duration;

/// A mutual-exclusion primitive (non-poisoning).
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

/// RAII guard returned by [`Mutex::lock`].
///
/// Holds an `Option` internally so [`Condvar::wait_for`] can move the
/// underlying std guard out and back while the caller keeps borrowing
/// this wrapper; the option is `None` only during that window.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<sync::MutexGuard<'a, T>>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        let guard = self
            .inner
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        MutexGuard { inner: Some(guard) }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(TryLockError::Poisoned(poison)) => Some(MutexGuard {
                inner: Some(poison.into_inner()),
            }),
            Err(TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.try_lock() {
            Some(guard) => f.debug_struct("Mutex").field("data", &&*guard).finish(),
            None => f.debug_struct("Mutex").field("data", &"<locked>").finish(),
        }
    }
}

/// Result of a timed condition-variable wait.
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable paired with [`Mutex`].
#[derive(Debug, Default)]
pub struct Condvar {
    inner: sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: sync::Condvar::new(),
        }
    }

    /// Wakes one waiter.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiters.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks until notified, releasing the mutex while waiting.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let std_guard = self
            .inner
            .wait(std_guard)
            .unwrap_or_else(|poison| poison.into_inner());
        guard.inner = Some(std_guard);
    }

    /// Blocks until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let std_guard = guard.inner.take().expect("guard present outside wait");
        let (std_guard, result) = self
            .inner
            .wait_timeout(std_guard, timeout)
            .unwrap_or_else(|poison| poison.into_inner());
        guard.inner = Some(std_guard);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

/// A reader-writer lock (non-poisoning).
#[derive(Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

/// Shared-access guard returned by [`RwLock::read`].
pub struct RwLockReadGuard<'a, T: ?Sized> {
    inner: sync::RwLockReadGuard<'a, T>,
}

/// Exclusive-access guard returned by [`RwLock::write`].
pub struct RwLockWriteGuard<'a, T: ?Sized> {
    inner: sync::RwLockWriteGuard<'a, T>,
}

impl<T> RwLock<T> {
    /// Creates a new reader-writer lock.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(|poison| poison.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        let inner = self
            .inner
            .read()
            .unwrap_or_else(|poison| poison.into_inner());
        RwLockReadGuard { inner }
    }

    /// Acquires exclusive access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        let inner = self
            .inner
            .write()
            .unwrap_or_else(|poison| poison.into_inner());
        RwLockWriteGuard { inner }
    }

    /// Mutable access without locking (requires exclusive ownership).
    pub fn get_mut(&mut self) -> &mut T {
        match self.inner.get_mut() {
            Ok(value) => value,
            Err(poison) => poison.into_inner(),
        }
    }
}

impl<T: ?Sized> Deref for RwLockReadGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> Deref for RwLockWriteGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.inner
    }
}

impl<T: ?Sized> DerefMut for RwLockWriteGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.inner
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for RwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("RwLock").finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 2);
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let clone = Arc::clone(&pair);
        let waiter = thread::spawn(move || {
            let (lock, cvar) = &*clone;
            let mut ready = lock.lock();
            while !*ready {
                let timed_out = cvar
                    .wait_for(&mut ready, Duration::from_secs(5))
                    .timed_out();
                assert!(!timed_out, "should be woken, not time out");
            }
        });
        thread::sleep(Duration::from_millis(10));
        let (lock, cvar) = &*pair;
        *lock.lock() = true;
        cvar.notify_all();
        waiter.join().unwrap();
    }

    #[test]
    fn rwlock_readers_and_writer() {
        let lock = RwLock::new(7);
        {
            let a = lock.read();
            let b = lock.read();
            assert_eq!(*a + *b, 14);
        }
        *lock.write() = 9;
        assert_eq!(*lock.read(), 9);
    }
}
