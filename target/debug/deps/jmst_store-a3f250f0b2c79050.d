/root/repo/target/debug/deps/jmst_store-a3f250f0b2c79050.d: crates/store/src/lib.rs crates/store/src/csv.rs crates/store/src/disk.rs crates/store/src/event.rs crates/store/src/query.rs crates/store/src/stats.rs crates/store/src/table.rs crates/store/src/trace.rs Cargo.toml

/root/repo/target/debug/deps/libjmst_store-a3f250f0b2c79050.rmeta: crates/store/src/lib.rs crates/store/src/csv.rs crates/store/src/disk.rs crates/store/src/event.rs crates/store/src/query.rs crates/store/src/stats.rs crates/store/src/table.rs crates/store/src/trace.rs Cargo.toml

crates/store/src/lib.rs:
crates/store/src/csv.rs:
crates/store/src/disk.rs:
crates/store/src/event.rs:
crates/store/src/query.rs:
crates/store/src/stats.rs:
crates/store/src/table.rs:
crates/store/src/trace.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
