/root/repo/target/debug/deps/serde-b874156b8a66f895.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-b874156b8a66f895: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
