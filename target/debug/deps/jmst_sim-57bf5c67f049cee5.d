/root/repo/target/debug/deps/jmst_sim-57bf5c67f049cee5.d: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/clock.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/pubsub.rs crates/sim/src/service.rs

/root/repo/target/debug/deps/jmst_sim-57bf5c67f049cee5: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/clock.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/pubsub.rs crates/sim/src/service.rs

crates/sim/src/lib.rs:
crates/sim/src/arrival.rs:
crates/sim/src/clock.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/pubsub.rs:
crates/sim/src/service.rs:
