/root/repo/target/debug/deps/fault_detection-f09aa98ee7d7dda4.d: tests/fault_detection.rs

/root/repo/target/debug/deps/fault_detection-f09aa98ee7d7dda4: tests/fault_detection.rs

tests/fault_detection.rs:
