/root/repo/target/debug/deps/serde_derive-98fd85b9c7298a52.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-98fd85b9c7298a52.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
