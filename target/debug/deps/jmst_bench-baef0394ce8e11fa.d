/root/repo/target/debug/deps/jmst_bench-baef0394ce8e11fa.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjmst_bench-baef0394ce8e11fa.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
