/root/repo/target/debug/deps/fanout_stress-a953d2c5a195ea5a.d: tests/fanout_stress.rs

/root/repo/target/debug/deps/fanout_stress-a953d2c5a195ea5a: tests/fanout_stress.rs

tests/fanout_stress.rs:
