/root/repo/target/debug/deps/jmst_store-18ea869052fb555d.d: crates/store/src/lib.rs crates/store/src/csv.rs crates/store/src/disk.rs crates/store/src/event.rs crates/store/src/query.rs crates/store/src/stats.rs crates/store/src/table.rs crates/store/src/trace.rs

/root/repo/target/debug/deps/jmst_store-18ea869052fb555d: crates/store/src/lib.rs crates/store/src/csv.rs crates/store/src/disk.rs crates/store/src/event.rs crates/store/src/query.rs crates/store/src/stats.rs crates/store/src/table.rs crates/store/src/trace.rs

crates/store/src/lib.rs:
crates/store/src/csv.rs:
crates/store/src/disk.rs:
crates/store/src/event.rs:
crates/store/src/query.rs:
crates/store/src/stats.rs:
crates/store/src/table.rs:
crates/store/src/trace.rs:
