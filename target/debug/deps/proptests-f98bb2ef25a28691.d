/root/repo/target/debug/deps/proptests-f98bb2ef25a28691.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-f98bb2ef25a28691: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
