/root/repo/target/debug/deps/proptests-6a38039f4ce4bbea.d: crates/api/tests/proptests.rs

/root/repo/target/debug/deps/proptests-6a38039f4ce4bbea: crates/api/tests/proptests.rs

crates/api/tests/proptests.rs:
