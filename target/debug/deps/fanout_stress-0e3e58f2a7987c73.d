/root/repo/target/debug/deps/fanout_stress-0e3e58f2a7987c73.d: tests/fanout_stress.rs Cargo.toml

/root/repo/target/debug/deps/libfanout_stress-0e3e58f2a7987c73.rmeta: tests/fanout_stress.rs Cargo.toml

tests/fanout_stress.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
