/root/repo/target/debug/deps/analysis_micro-e8578087bf80cfbe.d: crates/bench/benches/analysis_micro.rs

/root/repo/target/debug/deps/analysis_micro-e8578087bf80cfbe: crates/bench/benches/analysis_micro.rs

crates/bench/benches/analysis_micro.rs:
