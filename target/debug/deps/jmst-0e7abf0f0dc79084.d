/root/repo/target/debug/deps/jmst-0e7abf0f0dc79084.d: src/lib.rs

/root/repo/target/debug/deps/jmst-0e7abf0f0dc79084: src/lib.rs

src/lib.rs:
