/root/repo/target/debug/deps/serde-e3b84bacd47152c5.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e3b84bacd47152c5.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-e3b84bacd47152c5.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
