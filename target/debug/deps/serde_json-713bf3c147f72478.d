/root/repo/target/debug/deps/serde_json-713bf3c147f72478.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-713bf3c147f72478: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
