/root/repo/target/debug/deps/fault_detection-2aac29b8258614d9.d: tests/fault_detection.rs Cargo.toml

/root/repo/target/debug/deps/libfault_detection-2aac29b8258614d9.rmeta: tests/fault_detection.rs Cargo.toml

tests/fault_detection.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
