/root/repo/target/debug/deps/jmst-39a3562e19608820.d: src/lib.rs

/root/repo/target/debug/deps/libjmst-39a3562e19608820.rlib: src/lib.rs

/root/repo/target/debug/deps/libjmst-39a3562e19608820.rmeta: src/lib.rs

src/lib.rs:
