/root/repo/target/debug/deps/scenario_config-0df4c49c3e09d9fb.d: tests/scenario_config.rs

/root/repo/target/debug/deps/scenario_config-0df4c49c3e09d9fb: tests/scenario_config.rs

tests/scenario_config.rs:
