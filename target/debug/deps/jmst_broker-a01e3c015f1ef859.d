/root/repo/target/debug/deps/jmst_broker-a01e3c015f1ef859.d: crates/broker/src/lib.rs crates/broker/src/config.rs crates/broker/src/connection.rs crates/broker/src/core.rs crates/broker/src/endpoint.rs crates/broker/src/faults.rs crates/broker/src/session.rs crates/broker/src/provider.rs

/root/repo/target/debug/deps/libjmst_broker-a01e3c015f1ef859.rlib: crates/broker/src/lib.rs crates/broker/src/config.rs crates/broker/src/connection.rs crates/broker/src/core.rs crates/broker/src/endpoint.rs crates/broker/src/faults.rs crates/broker/src/session.rs crates/broker/src/provider.rs

/root/repo/target/debug/deps/libjmst_broker-a01e3c015f1ef859.rmeta: crates/broker/src/lib.rs crates/broker/src/config.rs crates/broker/src/connection.rs crates/broker/src/core.rs crates/broker/src/endpoint.rs crates/broker/src/faults.rs crates/broker/src/session.rs crates/broker/src/provider.rs

crates/broker/src/lib.rs:
crates/broker/src/config.rs:
crates/broker/src/connection.rs:
crates/broker/src/core.rs:
crates/broker/src/endpoint.rs:
crates/broker/src/faults.rs:
crates/broker/src/session.rs:
crates/broker/src/provider.rs:
