/root/repo/target/debug/deps/parking_lot-4deacfd6cef9b719.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-4deacfd6cef9b719.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/libparking_lot-4deacfd6cef9b719.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
