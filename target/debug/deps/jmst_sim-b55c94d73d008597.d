/root/repo/target/debug/deps/jmst_sim-b55c94d73d008597.d: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/clock.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/pubsub.rs crates/sim/src/service.rs Cargo.toml

/root/repo/target/debug/deps/libjmst_sim-b55c94d73d008597.rmeta: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/clock.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/pubsub.rs crates/sim/src/service.rs Cargo.toml

crates/sim/src/lib.rs:
crates/sim/src/arrival.rs:
crates/sim/src/clock.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/pubsub.rs:
crates/sim/src/service.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
