/root/repo/target/debug/deps/figures-c7e30c790321ec9f.d: crates/bench/benches/figures.rs Cargo.toml

/root/repo/target/debug/deps/libfigures-c7e30c790321ec9f.rmeta: crates/bench/benches/figures.rs Cargo.toml

crates/bench/benches/figures.rs:
Cargo.toml:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
