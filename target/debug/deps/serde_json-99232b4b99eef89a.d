/root/repo/target/debug/deps/serde_json-99232b4b99eef89a.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/serde_json-99232b4b99eef89a: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
