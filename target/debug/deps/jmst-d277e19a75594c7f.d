/root/repo/target/debug/deps/jmst-d277e19a75594c7f.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjmst-d277e19a75594c7f.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
