/root/repo/target/debug/deps/parking_lot-e02dc27669c29b7b.d: shims/parking_lot/src/lib.rs

/root/repo/target/debug/deps/parking_lot-e02dc27669c29b7b: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
