/root/repo/target/debug/deps/analysis_micro-303516270d5401cb.d: crates/bench/benches/analysis_micro.rs Cargo.toml

/root/repo/target/debug/deps/libanalysis_micro-303516270d5401cb.rmeta: crates/bench/benches/analysis_micro.rs Cargo.toml

crates/bench/benches/analysis_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
