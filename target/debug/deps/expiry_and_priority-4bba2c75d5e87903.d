/root/repo/target/debug/deps/expiry_and_priority-4bba2c75d5e87903.d: tests/expiry_and_priority.rs Cargo.toml

/root/repo/target/debug/deps/libexpiry_and_priority-4bba2c75d5e87903.rmeta: tests/expiry_and_priority.rs Cargo.toml

tests/expiry_and_priority.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
