/root/repo/target/debug/deps/jmst_store-6a3ae3c0d9932896.d: crates/store/src/lib.rs crates/store/src/csv.rs crates/store/src/disk.rs crates/store/src/event.rs crates/store/src/query.rs crates/store/src/stats.rs crates/store/src/table.rs crates/store/src/trace.rs

/root/repo/target/debug/deps/jmst_store-6a3ae3c0d9932896: crates/store/src/lib.rs crates/store/src/csv.rs crates/store/src/disk.rs crates/store/src/event.rs crates/store/src/query.rs crates/store/src/stats.rs crates/store/src/table.rs crates/store/src/trace.rs

crates/store/src/lib.rs:
crates/store/src/csv.rs:
crates/store/src/disk.rs:
crates/store/src/event.rs:
crates/store/src/query.rs:
crates/store/src/stats.rs:
crates/store/src/table.rs:
crates/store/src/trace.rs:
