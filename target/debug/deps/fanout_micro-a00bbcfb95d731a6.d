/root/repo/target/debug/deps/fanout_micro-a00bbcfb95d731a6.d: crates/bench/benches/fanout_micro.rs Cargo.toml

/root/repo/target/debug/deps/libfanout_micro-a00bbcfb95d731a6.rmeta: crates/bench/benches/fanout_micro.rs Cargo.toml

crates/bench/benches/fanout_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
