/root/repo/target/debug/deps/figures-6f1480046cfe5cdb.d: crates/bench/benches/figures.rs

/root/repo/target/debug/deps/figures-6f1480046cfe5cdb: crates/bench/benches/figures.rs

crates/bench/benches/figures.rs:

# env-dep:CARGO_MANIFEST_DIR=/root/repo/crates/bench
