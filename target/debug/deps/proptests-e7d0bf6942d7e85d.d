/root/repo/target/debug/deps/proptests-e7d0bf6942d7e85d.d: crates/broker/tests/proptests.rs

/root/repo/target/debug/deps/proptests-e7d0bf6942d7e85d: crates/broker/tests/proptests.rs

crates/broker/tests/proptests.rs:
