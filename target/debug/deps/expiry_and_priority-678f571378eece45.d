/root/repo/target/debug/deps/expiry_and_priority-678f571378eece45.d: tests/expiry_and_priority.rs

/root/repo/target/debug/deps/expiry_and_priority-678f571378eece45: tests/expiry_and_priority.rs

tests/expiry_and_priority.rs:
