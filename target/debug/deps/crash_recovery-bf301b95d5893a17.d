/root/repo/target/debug/deps/crash_recovery-bf301b95d5893a17.d: tests/crash_recovery.rs

/root/repo/target/debug/deps/crash_recovery-bf301b95d5893a17: tests/crash_recovery.rs

tests/crash_recovery.rs:
