/root/repo/target/debug/deps/jmst_store-756b3730da35c987.d: crates/store/src/lib.rs crates/store/src/csv.rs crates/store/src/disk.rs crates/store/src/event.rs crates/store/src/query.rs crates/store/src/stats.rs crates/store/src/table.rs crates/store/src/trace.rs

/root/repo/target/debug/deps/libjmst_store-756b3730da35c987.rlib: crates/store/src/lib.rs crates/store/src/csv.rs crates/store/src/disk.rs crates/store/src/event.rs crates/store/src/query.rs crates/store/src/stats.rs crates/store/src/table.rs crates/store/src/trace.rs

/root/repo/target/debug/deps/libjmst_store-756b3730da35c987.rmeta: crates/store/src/lib.rs crates/store/src/csv.rs crates/store/src/disk.rs crates/store/src/event.rs crates/store/src/query.rs crates/store/src/stats.rs crates/store/src/table.rs crates/store/src/trace.rs

crates/store/src/lib.rs:
crates/store/src/csv.rs:
crates/store/src/disk.rs:
crates/store/src/event.rs:
crates/store/src/query.rs:
crates/store/src/stats.rs:
crates/store/src/table.rs:
crates/store/src/trace.rs:
