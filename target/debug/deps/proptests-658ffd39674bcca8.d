/root/repo/target/debug/deps/proptests-658ffd39674bcca8.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-658ffd39674bcca8: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
