/root/repo/target/debug/deps/store_ablation-f6a0b94ea52caf7b.d: crates/bench/benches/store_ablation.rs

/root/repo/target/debug/deps/store_ablation-f6a0b94ea52caf7b: crates/bench/benches/store_ablation.rs

crates/bench/benches/store_ablation.rs:
