/root/repo/target/debug/deps/jmst_bench-85a1e88f4cb6dc2b.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libjmst_bench-85a1e88f4cb6dc2b.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libjmst_bench-85a1e88f4cb6dc2b.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
