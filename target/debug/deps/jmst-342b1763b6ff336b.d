/root/repo/target/debug/deps/jmst-342b1763b6ff336b.d: src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjmst-342b1763b6ff336b.rmeta: src/lib.rs Cargo.toml

src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
