/root/repo/target/debug/deps/jmst_broker-44e33a192fdb63a4.d: crates/broker/src/lib.rs crates/broker/src/config.rs crates/broker/src/connection.rs crates/broker/src/core.rs crates/broker/src/endpoint.rs crates/broker/src/faults.rs crates/broker/src/provider.rs crates/broker/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libjmst_broker-44e33a192fdb63a4.rmeta: crates/broker/src/lib.rs crates/broker/src/config.rs crates/broker/src/connection.rs crates/broker/src/core.rs crates/broker/src/endpoint.rs crates/broker/src/faults.rs crates/broker/src/provider.rs crates/broker/src/session.rs Cargo.toml

crates/broker/src/lib.rs:
crates/broker/src/config.rs:
crates/broker/src/connection.rs:
crates/broker/src/core.rs:
crates/broker/src/endpoint.rs:
crates/broker/src/faults.rs:
crates/broker/src/provider.rs:
crates/broker/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
