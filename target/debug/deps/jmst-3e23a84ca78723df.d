/root/repo/target/debug/deps/jmst-3e23a84ca78723df.d: src/lib.rs

/root/repo/target/debug/deps/jmst-3e23a84ca78723df: src/lib.rs

src/lib.rs:
