/root/repo/target/debug/deps/expiry_and_priority-e0e0797cf22a8494.d: tests/expiry_and_priority.rs

/root/repo/target/debug/deps/expiry_and_priority-e0e0797cf22a8494: tests/expiry_and_priority.rs

tests/expiry_and_priority.rs:
