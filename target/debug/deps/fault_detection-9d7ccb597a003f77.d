/root/repo/target/debug/deps/fault_detection-9d7ccb597a003f77.d: tests/fault_detection.rs

/root/repo/target/debug/deps/fault_detection-9d7ccb597a003f77: tests/fault_detection.rs

tests/fault_detection.rs:
