/root/repo/target/debug/deps/faulty_providers-d985ff51780becbf.d: crates/broker/tests/faulty_providers.rs Cargo.toml

/root/repo/target/debug/deps/libfaulty_providers-d985ff51780becbf.rmeta: crates/broker/tests/faulty_providers.rs Cargo.toml

crates/broker/tests/faulty_providers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
