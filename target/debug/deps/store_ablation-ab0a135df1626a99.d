/root/repo/target/debug/deps/store_ablation-ab0a135df1626a99.d: crates/bench/benches/store_ablation.rs Cargo.toml

/root/repo/target/debug/deps/libstore_ablation-ab0a135df1626a99.rmeta: crates/bench/benches/store_ablation.rs Cargo.toml

crates/bench/benches/store_ablation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
