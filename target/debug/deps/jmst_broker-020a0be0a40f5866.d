/root/repo/target/debug/deps/jmst_broker-020a0be0a40f5866.d: crates/broker/src/lib.rs crates/broker/src/config.rs crates/broker/src/connection.rs crates/broker/src/core.rs crates/broker/src/endpoint.rs crates/broker/src/faults.rs crates/broker/src/provider.rs crates/broker/src/session.rs

/root/repo/target/debug/deps/libjmst_broker-020a0be0a40f5866.rlib: crates/broker/src/lib.rs crates/broker/src/config.rs crates/broker/src/connection.rs crates/broker/src/core.rs crates/broker/src/endpoint.rs crates/broker/src/faults.rs crates/broker/src/provider.rs crates/broker/src/session.rs

/root/repo/target/debug/deps/libjmst_broker-020a0be0a40f5866.rmeta: crates/broker/src/lib.rs crates/broker/src/config.rs crates/broker/src/connection.rs crates/broker/src/core.rs crates/broker/src/endpoint.rs crates/broker/src/faults.rs crates/broker/src/provider.rs crates/broker/src/session.rs

crates/broker/src/lib.rs:
crates/broker/src/config.rs:
crates/broker/src/connection.rs:
crates/broker/src/core.rs:
crates/broker/src/endpoint.rs:
crates/broker/src/faults.rs:
crates/broker/src/provider.rs:
crates/broker/src/session.rs:
