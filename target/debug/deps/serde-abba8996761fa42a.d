/root/repo/target/debug/deps/serde-abba8996761fa42a.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-abba8996761fa42a.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
