/root/repo/target/debug/deps/jmst_bench-8ea2cd41d922eeda.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/jmst_bench-8ea2cd41d922eeda: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
