/root/repo/target/debug/deps/proptests-ed118a566dba4db9.d: crates/api/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-ed118a566dba4db9.rmeta: crates/api/tests/proptests.rs Cargo.toml

crates/api/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
