/root/repo/target/debug/deps/messaging_modes-bbaff126e40238cf.d: tests/messaging_modes.rs Cargo.toml

/root/repo/target/debug/deps/libmessaging_modes-bbaff126e40238cf.rmeta: tests/messaging_modes.rs Cargo.toml

tests/messaging_modes.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
