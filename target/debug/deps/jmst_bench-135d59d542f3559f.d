/root/repo/target/debug/deps/jmst_bench-135d59d542f3559f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libjmst_bench-135d59d542f3559f.rlib: crates/bench/src/lib.rs

/root/repo/target/debug/deps/libjmst_bench-135d59d542f3559f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
