/root/repo/target/debug/deps/broker_micro-0e15458699000ec5.d: crates/bench/benches/broker_micro.rs Cargo.toml

/root/repo/target/debug/deps/libbroker_micro-0e15458699000ec5.rmeta: crates/bench/benches/broker_micro.rs Cargo.toml

crates/bench/benches/broker_micro.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
