/root/repo/target/debug/deps/fanout_micro-5a2f5c7248a42f34.d: crates/bench/benches/fanout_micro.rs

/root/repo/target/debug/deps/fanout_micro-5a2f5c7248a42f34: crates/bench/benches/fanout_micro.rs

crates/bench/benches/fanout_micro.rs:
