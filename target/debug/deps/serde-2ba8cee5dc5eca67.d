/root/repo/target/debug/deps/serde-2ba8cee5dc5eca67.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/serde-2ba8cee5dc5eca67: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
