/root/repo/target/debug/deps/proptests-b47b19c54b1a57fd.d: crates/broker/tests/proptests.rs

/root/repo/target/debug/deps/proptests-b47b19c54b1a57fd: crates/broker/tests/proptests.rs

crates/broker/tests/proptests.rs:
