/root/repo/target/debug/deps/jmst_harness-6526bd8a0abd01eb.d: crates/harness/src/lib.rs crates/harness/src/config_text.rs crates/harness/src/drivers.rs crates/harness/src/error.rs crates/harness/src/prince.rs crates/harness/src/runner.rs crates/harness/src/simrun.rs crates/harness/src/spec.rs

/root/repo/target/debug/deps/jmst_harness-6526bd8a0abd01eb: crates/harness/src/lib.rs crates/harness/src/config_text.rs crates/harness/src/drivers.rs crates/harness/src/error.rs crates/harness/src/prince.rs crates/harness/src/runner.rs crates/harness/src/simrun.rs crates/harness/src/spec.rs

crates/harness/src/lib.rs:
crates/harness/src/config_text.rs:
crates/harness/src/drivers.rs:
crates/harness/src/error.rs:
crates/harness/src/prince.rs:
crates/harness/src/runner.rs:
crates/harness/src/simrun.rs:
crates/harness/src/spec.rs:
