/root/repo/target/debug/deps/serde_derive-e89d45719ce79637.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/libserde_derive-e89d45719ce79637.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
