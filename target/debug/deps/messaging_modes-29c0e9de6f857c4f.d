/root/repo/target/debug/deps/messaging_modes-29c0e9de6f857c4f.d: tests/messaging_modes.rs

/root/repo/target/debug/deps/messaging_modes-29c0e9de6f857c4f: tests/messaging_modes.rs

tests/messaging_modes.rs:
