/root/repo/target/debug/deps/jmst_sim-a52df4031e08c127.d: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/clock.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/pubsub.rs crates/sim/src/service.rs

/root/repo/target/debug/deps/libjmst_sim-a52df4031e08c127.rlib: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/clock.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/pubsub.rs crates/sim/src/service.rs

/root/repo/target/debug/deps/libjmst_sim-a52df4031e08c127.rmeta: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/clock.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/pubsub.rs crates/sim/src/service.rs

crates/sim/src/lib.rs:
crates/sim/src/arrival.rs:
crates/sim/src/clock.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/pubsub.rs:
crates/sim/src/service.rs:
