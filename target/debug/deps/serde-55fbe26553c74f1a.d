/root/repo/target/debug/deps/serde-55fbe26553c74f1a.d: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-55fbe26553c74f1a.rlib: shims/serde/src/lib.rs

/root/repo/target/debug/deps/libserde-55fbe26553c74f1a.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
