/root/repo/target/debug/deps/serde_derive-a4aa9ec5310bbd4f.d: shims/serde_derive/src/lib.rs

/root/repo/target/debug/deps/serde_derive-a4aa9ec5310bbd4f: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
