/root/repo/target/debug/deps/jmst_core-e6222959203f4795.d: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/config.rs crates/core/src/defs.rs crates/core/src/perf.rs crates/core/src/properties/mod.rs crates/core/src/properties/duplicates.rs crates/core/src/properties/expiry.rs crates/core/src/properties/integrity.rs crates/core/src/properties/ordering.rs crates/core/src/properties/priority.rs crates/core/src/properties/required.rs crates/core/src/report.rs crates/core/src/violation.rs Cargo.toml

/root/repo/target/debug/deps/libjmst_core-e6222959203f4795.rmeta: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/config.rs crates/core/src/defs.rs crates/core/src/perf.rs crates/core/src/properties/mod.rs crates/core/src/properties/duplicates.rs crates/core/src/properties/expiry.rs crates/core/src/properties/integrity.rs crates/core/src/properties/ordering.rs crates/core/src/properties/priority.rs crates/core/src/properties/required.rs crates/core/src/report.rs crates/core/src/violation.rs Cargo.toml

crates/core/src/lib.rs:
crates/core/src/analyzer.rs:
crates/core/src/config.rs:
crates/core/src/defs.rs:
crates/core/src/perf.rs:
crates/core/src/properties/mod.rs:
crates/core/src/properties/duplicates.rs:
crates/core/src/properties/expiry.rs:
crates/core/src/properties/integrity.rs:
crates/core/src/properties/ordering.rs:
crates/core/src/properties/priority.rs:
crates/core/src/properties/required.rs:
crates/core/src/report.rs:
crates/core/src/violation.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
