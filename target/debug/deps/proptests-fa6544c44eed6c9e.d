/root/repo/target/debug/deps/proptests-fa6544c44eed6c9e.d: crates/store/tests/proptests.rs

/root/repo/target/debug/deps/proptests-fa6544c44eed6c9e: crates/store/tests/proptests.rs

crates/store/tests/proptests.rs:
