/root/repo/target/debug/deps/jmst_harness-b8e65d6d4141232d.d: crates/harness/src/lib.rs crates/harness/src/config_text.rs crates/harness/src/drivers.rs crates/harness/src/error.rs crates/harness/src/prince.rs crates/harness/src/runner.rs crates/harness/src/simrun.rs crates/harness/src/spec.rs

/root/repo/target/debug/deps/jmst_harness-b8e65d6d4141232d: crates/harness/src/lib.rs crates/harness/src/config_text.rs crates/harness/src/drivers.rs crates/harness/src/error.rs crates/harness/src/prince.rs crates/harness/src/runner.rs crates/harness/src/simrun.rs crates/harness/src/spec.rs

crates/harness/src/lib.rs:
crates/harness/src/config_text.rs:
crates/harness/src/drivers.rs:
crates/harness/src/error.rs:
crates/harness/src/prince.rs:
crates/harness/src/runner.rs:
crates/harness/src/simrun.rs:
crates/harness/src/spec.rs:
