/root/repo/target/debug/deps/messaging_modes-52227d4c88815bfa.d: tests/messaging_modes.rs

/root/repo/target/debug/deps/messaging_modes-52227d4c88815bfa: tests/messaging_modes.rs

tests/messaging_modes.rs:
