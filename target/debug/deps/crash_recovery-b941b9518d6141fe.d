/root/repo/target/debug/deps/crash_recovery-b941b9518d6141fe.d: tests/crash_recovery.rs

/root/repo/target/debug/deps/crash_recovery-b941b9518d6141fe: tests/crash_recovery.rs

tests/crash_recovery.rs:
