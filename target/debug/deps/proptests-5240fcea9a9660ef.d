/root/repo/target/debug/deps/proptests-5240fcea9a9660ef.d: crates/store/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-5240fcea9a9660ef.rmeta: crates/store/tests/proptests.rs Cargo.toml

crates/store/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
