/root/repo/target/debug/deps/proptests-91a9b22577c6d9d1.d: crates/api/tests/proptests.rs

/root/repo/target/debug/deps/proptests-91a9b22577c6d9d1: crates/api/tests/proptests.rs

crates/api/tests/proptests.rs:
