/root/repo/target/debug/deps/jmst_api-800bb06330bef68e.d: crates/api/src/lib.rs crates/api/src/body.rs crates/api/src/destination.rs crates/api/src/error.rs crates/api/src/id.rs crates/api/src/message.rs crates/api/src/modes.rs crates/api/src/properties.rs crates/api/src/provider.rs crates/api/src/selector/mod.rs crates/api/src/selector/ast.rs crates/api/src/selector/eval.rs crates/api/src/selector/parser.rs crates/api/src/selector/token.rs crates/api/src/time.rs crates/api/src/value.rs Cargo.toml

/root/repo/target/debug/deps/libjmst_api-800bb06330bef68e.rmeta: crates/api/src/lib.rs crates/api/src/body.rs crates/api/src/destination.rs crates/api/src/error.rs crates/api/src/id.rs crates/api/src/message.rs crates/api/src/modes.rs crates/api/src/properties.rs crates/api/src/provider.rs crates/api/src/selector/mod.rs crates/api/src/selector/ast.rs crates/api/src/selector/eval.rs crates/api/src/selector/parser.rs crates/api/src/selector/token.rs crates/api/src/time.rs crates/api/src/value.rs Cargo.toml

crates/api/src/lib.rs:
crates/api/src/body.rs:
crates/api/src/destination.rs:
crates/api/src/error.rs:
crates/api/src/id.rs:
crates/api/src/message.rs:
crates/api/src/modes.rs:
crates/api/src/properties.rs:
crates/api/src/provider.rs:
crates/api/src/selector/mod.rs:
crates/api/src/selector/ast.rs:
crates/api/src/selector/eval.rs:
crates/api/src/selector/parser.rs:
crates/api/src/selector/token.rs:
crates/api/src/time.rs:
crates/api/src/value.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
