/root/repo/target/debug/deps/jmst_harness-5966bd329cdf8497.d: crates/harness/src/lib.rs crates/harness/src/config_text.rs crates/harness/src/drivers.rs crates/harness/src/error.rs crates/harness/src/prince.rs crates/harness/src/runner.rs crates/harness/src/simrun.rs crates/harness/src/spec.rs

/root/repo/target/debug/deps/libjmst_harness-5966bd329cdf8497.rlib: crates/harness/src/lib.rs crates/harness/src/config_text.rs crates/harness/src/drivers.rs crates/harness/src/error.rs crates/harness/src/prince.rs crates/harness/src/runner.rs crates/harness/src/simrun.rs crates/harness/src/spec.rs

/root/repo/target/debug/deps/libjmst_harness-5966bd329cdf8497.rmeta: crates/harness/src/lib.rs crates/harness/src/config_text.rs crates/harness/src/drivers.rs crates/harness/src/error.rs crates/harness/src/prince.rs crates/harness/src/runner.rs crates/harness/src/simrun.rs crates/harness/src/spec.rs

crates/harness/src/lib.rs:
crates/harness/src/config_text.rs:
crates/harness/src/drivers.rs:
crates/harness/src/error.rs:
crates/harness/src/prince.rs:
crates/harness/src/runner.rs:
crates/harness/src/simrun.rs:
crates/harness/src/spec.rs:
