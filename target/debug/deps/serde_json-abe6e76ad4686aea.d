/root/repo/target/debug/deps/serde_json-abe6e76ad4686aea.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-abe6e76ad4686aea.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-abe6e76ad4686aea.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
