/root/repo/target/debug/deps/faulty_providers-55b91502e9d33034.d: crates/broker/tests/faulty_providers.rs

/root/repo/target/debug/deps/faulty_providers-55b91502e9d33034: crates/broker/tests/faulty_providers.rs

crates/broker/tests/faulty_providers.rs:
