/root/repo/target/debug/deps/proptests-a9d13c52b56721e6.d: crates/sim/tests/proptests.rs

/root/repo/target/debug/deps/proptests-a9d13c52b56721e6: crates/sim/tests/proptests.rs

crates/sim/tests/proptests.rs:
