/root/repo/target/debug/deps/jmst_bench-53949f1fc996813a.d: crates/bench/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libjmst_bench-53949f1fc996813a.rmeta: crates/bench/src/lib.rs Cargo.toml

crates/bench/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
