/root/repo/target/debug/deps/proptests-9c88181f068a711d.d: crates/broker/tests/proptests.rs Cargo.toml

/root/repo/target/debug/deps/libproptests-9c88181f068a711d.rmeta: crates/broker/tests/proptests.rs Cargo.toml

crates/broker/tests/proptests.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
