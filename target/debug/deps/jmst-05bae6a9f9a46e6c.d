/root/repo/target/debug/deps/jmst-05bae6a9f9a46e6c.d: src/lib.rs

/root/repo/target/debug/deps/libjmst-05bae6a9f9a46e6c.rlib: src/lib.rs

/root/repo/target/debug/deps/libjmst-05bae6a9f9a46e6c.rmeta: src/lib.rs

src/lib.rs:
