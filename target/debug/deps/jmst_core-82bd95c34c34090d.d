/root/repo/target/debug/deps/jmst_core-82bd95c34c34090d.d: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/config.rs crates/core/src/defs.rs crates/core/src/perf.rs crates/core/src/properties/mod.rs crates/core/src/properties/duplicates.rs crates/core/src/properties/expiry.rs crates/core/src/properties/integrity.rs crates/core/src/properties/ordering.rs crates/core/src/properties/priority.rs crates/core/src/properties/required.rs crates/core/src/report.rs crates/core/src/violation.rs

/root/repo/target/debug/deps/libjmst_core-82bd95c34c34090d.rlib: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/config.rs crates/core/src/defs.rs crates/core/src/perf.rs crates/core/src/properties/mod.rs crates/core/src/properties/duplicates.rs crates/core/src/properties/expiry.rs crates/core/src/properties/integrity.rs crates/core/src/properties/ordering.rs crates/core/src/properties/priority.rs crates/core/src/properties/required.rs crates/core/src/report.rs crates/core/src/violation.rs

/root/repo/target/debug/deps/libjmst_core-82bd95c34c34090d.rmeta: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/config.rs crates/core/src/defs.rs crates/core/src/perf.rs crates/core/src/properties/mod.rs crates/core/src/properties/duplicates.rs crates/core/src/properties/expiry.rs crates/core/src/properties/integrity.rs crates/core/src/properties/ordering.rs crates/core/src/properties/priority.rs crates/core/src/properties/required.rs crates/core/src/report.rs crates/core/src/violation.rs

crates/core/src/lib.rs:
crates/core/src/analyzer.rs:
crates/core/src/config.rs:
crates/core/src/defs.rs:
crates/core/src/perf.rs:
crates/core/src/properties/mod.rs:
crates/core/src/properties/duplicates.rs:
crates/core/src/properties/expiry.rs:
crates/core/src/properties/integrity.rs:
crates/core/src/properties/ordering.rs:
crates/core/src/properties/priority.rs:
crates/core/src/properties/required.rs:
crates/core/src/report.rs:
crates/core/src/violation.rs:
