/root/repo/target/debug/deps/broker_micro-0734976e54e7439c.d: crates/bench/benches/broker_micro.rs

/root/repo/target/debug/deps/broker_micro-0734976e54e7439c: crates/bench/benches/broker_micro.rs

crates/bench/benches/broker_micro.rs:
