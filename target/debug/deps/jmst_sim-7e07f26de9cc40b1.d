/root/repo/target/debug/deps/jmst_sim-7e07f26de9cc40b1.d: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/clock.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/pubsub.rs crates/sim/src/service.rs

/root/repo/target/debug/deps/jmst_sim-7e07f26de9cc40b1: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/clock.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/pubsub.rs crates/sim/src/service.rs

crates/sim/src/lib.rs:
crates/sim/src/arrival.rs:
crates/sim/src/clock.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/pubsub.rs:
crates/sim/src/service.rs:
