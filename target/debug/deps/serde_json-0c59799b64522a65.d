/root/repo/target/debug/deps/serde_json-0c59799b64522a65.d: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-0c59799b64522a65.rlib: shims/serde_json/src/lib.rs

/root/repo/target/debug/deps/libserde_json-0c59799b64522a65.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
