/root/repo/target/debug/deps/jmst_bench-49b831bfb3cf563f.d: crates/bench/src/lib.rs

/root/repo/target/debug/deps/jmst_bench-49b831bfb3cf563f: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
