/root/repo/target/debug/deps/jmst_broker-539f90740f2c131a.d: crates/broker/src/lib.rs crates/broker/src/config.rs crates/broker/src/connection.rs crates/broker/src/core.rs crates/broker/src/endpoint.rs crates/broker/src/faults.rs crates/broker/src/provider.rs crates/broker/src/session.rs Cargo.toml

/root/repo/target/debug/deps/libjmst_broker-539f90740f2c131a.rmeta: crates/broker/src/lib.rs crates/broker/src/config.rs crates/broker/src/connection.rs crates/broker/src/core.rs crates/broker/src/endpoint.rs crates/broker/src/faults.rs crates/broker/src/provider.rs crates/broker/src/session.rs Cargo.toml

crates/broker/src/lib.rs:
crates/broker/src/config.rs:
crates/broker/src/connection.rs:
crates/broker/src/core.rs:
crates/broker/src/endpoint.rs:
crates/broker/src/faults.rs:
crates/broker/src/provider.rs:
crates/broker/src/session.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
