/root/repo/target/debug/deps/proptests-fc39491109abf529.d: crates/store/tests/proptests.rs

/root/repo/target/debug/deps/proptests-fc39491109abf529: crates/store/tests/proptests.rs

crates/store/tests/proptests.rs:
