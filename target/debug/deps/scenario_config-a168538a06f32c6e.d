/root/repo/target/debug/deps/scenario_config-a168538a06f32c6e.d: tests/scenario_config.rs

/root/repo/target/debug/deps/scenario_config-a168538a06f32c6e: tests/scenario_config.rs

tests/scenario_config.rs:
