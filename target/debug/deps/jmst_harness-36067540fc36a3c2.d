/root/repo/target/debug/deps/jmst_harness-36067540fc36a3c2.d: crates/harness/src/lib.rs crates/harness/src/config_text.rs crates/harness/src/drivers.rs crates/harness/src/error.rs crates/harness/src/prince.rs crates/harness/src/runner.rs crates/harness/src/simrun.rs crates/harness/src/spec.rs Cargo.toml

/root/repo/target/debug/deps/libjmst_harness-36067540fc36a3c2.rmeta: crates/harness/src/lib.rs crates/harness/src/config_text.rs crates/harness/src/drivers.rs crates/harness/src/error.rs crates/harness/src/prince.rs crates/harness/src/runner.rs crates/harness/src/simrun.rs crates/harness/src/spec.rs Cargo.toml

crates/harness/src/lib.rs:
crates/harness/src/config_text.rs:
crates/harness/src/drivers.rs:
crates/harness/src/error.rs:
crates/harness/src/prince.rs:
crates/harness/src/runner.rs:
crates/harness/src/simrun.rs:
crates/harness/src/spec.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
