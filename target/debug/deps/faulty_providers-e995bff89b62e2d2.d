/root/repo/target/debug/deps/faulty_providers-e995bff89b62e2d2.d: crates/broker/tests/faulty_providers.rs

/root/repo/target/debug/deps/faulty_providers-e995bff89b62e2d2: crates/broker/tests/faulty_providers.rs

crates/broker/tests/faulty_providers.rs:
