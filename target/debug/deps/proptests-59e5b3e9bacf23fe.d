/root/repo/target/debug/deps/proptests-59e5b3e9bacf23fe.d: crates/core/tests/proptests.rs

/root/repo/target/debug/deps/proptests-59e5b3e9bacf23fe: crates/core/tests/proptests.rs

crates/core/tests/proptests.rs:
