/root/repo/target/debug/deps/serde-8419a08e42d20a99.d: shims/serde/src/lib.rs Cargo.toml

/root/repo/target/debug/deps/libserde-8419a08e42d20a99.rmeta: shims/serde/src/lib.rs Cargo.toml

shims/serde/src/lib.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
