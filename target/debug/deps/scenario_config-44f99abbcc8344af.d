/root/repo/target/debug/deps/scenario_config-44f99abbcc8344af.d: tests/scenario_config.rs Cargo.toml

/root/repo/target/debug/deps/libscenario_config-44f99abbcc8344af.rmeta: tests/scenario_config.rs Cargo.toml

tests/scenario_config.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
