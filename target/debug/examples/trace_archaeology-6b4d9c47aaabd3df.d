/root/repo/target/debug/examples/trace_archaeology-6b4d9c47aaabd3df.d: examples/trace_archaeology.rs Cargo.toml

/root/repo/target/debug/examples/libtrace_archaeology-6b4d9c47aaabd3df.rmeta: examples/trace_archaeology.rs Cargo.toml

examples/trace_archaeology.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
