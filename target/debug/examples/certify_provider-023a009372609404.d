/root/repo/target/debug/examples/certify_provider-023a009372609404.d: examples/certify_provider.rs

/root/repo/target/debug/examples/certify_provider-023a009372609404: examples/certify_provider.rs

examples/certify_provider.rs:
