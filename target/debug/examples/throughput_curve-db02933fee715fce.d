/root/repo/target/debug/examples/throughput_curve-db02933fee715fce.d: examples/throughput_curve.rs Cargo.toml

/root/repo/target/debug/examples/libthroughput_curve-db02933fee715fce.rmeta: examples/throughput_curve.rs Cargo.toml

examples/throughput_curve.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
