/root/repo/target/debug/examples/compare_providers-379d64fa671e4fb8.d: examples/compare_providers.rs

/root/repo/target/debug/examples/compare_providers-379d64fa671e4fb8: examples/compare_providers.rs

examples/compare_providers.rs:
