/root/repo/target/debug/examples/throughput_curve-7d8b1d21fa686b09.d: examples/throughput_curve.rs

/root/repo/target/debug/examples/throughput_curve-7d8b1d21fa686b09: examples/throughput_curve.rs

examples/throughput_curve.rs:
