/root/repo/target/debug/examples/quickstart-e4a59b396db2449f.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-e4a59b396db2449f: examples/quickstart.rs

examples/quickstart.rs:
