/root/repo/target/debug/examples/run_scenario-9d6b5599eaf1e39a.d: examples/run_scenario.rs

/root/repo/target/debug/examples/run_scenario-9d6b5599eaf1e39a: examples/run_scenario.rs

examples/run_scenario.rs:
