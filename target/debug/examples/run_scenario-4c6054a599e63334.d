/root/repo/target/debug/examples/run_scenario-4c6054a599e63334.d: examples/run_scenario.rs Cargo.toml

/root/repo/target/debug/examples/librun_scenario-4c6054a599e63334.rmeta: examples/run_scenario.rs Cargo.toml

examples/run_scenario.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
