/root/repo/target/debug/examples/request_reply-7327398d7814a00f.d: examples/request_reply.rs Cargo.toml

/root/repo/target/debug/examples/librequest_reply-7327398d7814a00f.rmeta: examples/request_reply.rs Cargo.toml

examples/request_reply.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
