/root/repo/target/debug/examples/request_reply-87576f8eeb612dfe.d: examples/request_reply.rs

/root/repo/target/debug/examples/request_reply-87576f8eeb612dfe: examples/request_reply.rs

examples/request_reply.rs:
