/root/repo/target/debug/examples/quickstart-f9f8535db1d7ca0f.d: examples/quickstart.rs Cargo.toml

/root/repo/target/debug/examples/libquickstart-f9f8535db1d7ca0f.rmeta: examples/quickstart.rs Cargo.toml

examples/quickstart.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
