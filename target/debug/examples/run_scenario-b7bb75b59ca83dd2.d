/root/repo/target/debug/examples/run_scenario-b7bb75b59ca83dd2.d: examples/run_scenario.rs

/root/repo/target/debug/examples/run_scenario-b7bb75b59ca83dd2: examples/run_scenario.rs

examples/run_scenario.rs:
