/root/repo/target/debug/examples/trace_archaeology-27324d53d7daf68d.d: examples/trace_archaeology.rs

/root/repo/target/debug/examples/trace_archaeology-27324d53d7daf68d: examples/trace_archaeology.rs

examples/trace_archaeology.rs:
