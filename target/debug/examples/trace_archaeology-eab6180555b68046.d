/root/repo/target/debug/examples/trace_archaeology-eab6180555b68046.d: examples/trace_archaeology.rs

/root/repo/target/debug/examples/trace_archaeology-eab6180555b68046: examples/trace_archaeology.rs

examples/trace_archaeology.rs:
