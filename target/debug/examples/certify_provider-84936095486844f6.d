/root/repo/target/debug/examples/certify_provider-84936095486844f6.d: examples/certify_provider.rs Cargo.toml

/root/repo/target/debug/examples/libcertify_provider-84936095486844f6.rmeta: examples/certify_provider.rs Cargo.toml

examples/certify_provider.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
