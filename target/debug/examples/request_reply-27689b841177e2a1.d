/root/repo/target/debug/examples/request_reply-27689b841177e2a1.d: examples/request_reply.rs

/root/repo/target/debug/examples/request_reply-27689b841177e2a1: examples/request_reply.rs

examples/request_reply.rs:
