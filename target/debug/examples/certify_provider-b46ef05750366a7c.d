/root/repo/target/debug/examples/certify_provider-b46ef05750366a7c.d: examples/certify_provider.rs

/root/repo/target/debug/examples/certify_provider-b46ef05750366a7c: examples/certify_provider.rs

examples/certify_provider.rs:
