/root/repo/target/debug/examples/compare_providers-48ef88bb8674a1a8.d: examples/compare_providers.rs

/root/repo/target/debug/examples/compare_providers-48ef88bb8674a1a8: examples/compare_providers.rs

examples/compare_providers.rs:
