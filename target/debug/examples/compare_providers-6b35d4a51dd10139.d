/root/repo/target/debug/examples/compare_providers-6b35d4a51dd10139.d: examples/compare_providers.rs Cargo.toml

/root/repo/target/debug/examples/libcompare_providers-6b35d4a51dd10139.rmeta: examples/compare_providers.rs Cargo.toml

examples/compare_providers.rs:
Cargo.toml:

# env-dep:CLIPPY_ARGS=-D__CLIPPY_HACKERY__warnings__CLIPPY_HACKERY__
# env-dep:CLIPPY_CONF_DIR
