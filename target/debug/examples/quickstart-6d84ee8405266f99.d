/root/repo/target/debug/examples/quickstart-6d84ee8405266f99.d: examples/quickstart.rs

/root/repo/target/debug/examples/quickstart-6d84ee8405266f99: examples/quickstart.rs

examples/quickstart.rs:
