/root/repo/target/debug/examples/throughput_curve-5790ba0572036312.d: examples/throughput_curve.rs

/root/repo/target/debug/examples/throughput_curve-5790ba0572036312: examples/throughput_curve.rs

examples/throughput_curve.rs:
