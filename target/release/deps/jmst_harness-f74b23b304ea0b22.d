/root/repo/target/release/deps/jmst_harness-f74b23b304ea0b22.d: crates/harness/src/lib.rs crates/harness/src/config_text.rs crates/harness/src/drivers.rs crates/harness/src/error.rs crates/harness/src/prince.rs crates/harness/src/runner.rs crates/harness/src/simrun.rs crates/harness/src/spec.rs

/root/repo/target/release/deps/libjmst_harness-f74b23b304ea0b22.rlib: crates/harness/src/lib.rs crates/harness/src/config_text.rs crates/harness/src/drivers.rs crates/harness/src/error.rs crates/harness/src/prince.rs crates/harness/src/runner.rs crates/harness/src/simrun.rs crates/harness/src/spec.rs

/root/repo/target/release/deps/libjmst_harness-f74b23b304ea0b22.rmeta: crates/harness/src/lib.rs crates/harness/src/config_text.rs crates/harness/src/drivers.rs crates/harness/src/error.rs crates/harness/src/prince.rs crates/harness/src/runner.rs crates/harness/src/simrun.rs crates/harness/src/spec.rs

crates/harness/src/lib.rs:
crates/harness/src/config_text.rs:
crates/harness/src/drivers.rs:
crates/harness/src/error.rs:
crates/harness/src/prince.rs:
crates/harness/src/runner.rs:
crates/harness/src/simrun.rs:
crates/harness/src/spec.rs:
