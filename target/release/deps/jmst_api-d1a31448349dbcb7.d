/root/repo/target/release/deps/jmst_api-d1a31448349dbcb7.d: crates/api/src/lib.rs crates/api/src/body.rs crates/api/src/destination.rs crates/api/src/error.rs crates/api/src/id.rs crates/api/src/message.rs crates/api/src/modes.rs crates/api/src/properties.rs crates/api/src/provider.rs crates/api/src/selector/mod.rs crates/api/src/selector/ast.rs crates/api/src/selector/eval.rs crates/api/src/selector/parser.rs crates/api/src/selector/token.rs crates/api/src/time.rs crates/api/src/value.rs

/root/repo/target/release/deps/libjmst_api-d1a31448349dbcb7.rlib: crates/api/src/lib.rs crates/api/src/body.rs crates/api/src/destination.rs crates/api/src/error.rs crates/api/src/id.rs crates/api/src/message.rs crates/api/src/modes.rs crates/api/src/properties.rs crates/api/src/provider.rs crates/api/src/selector/mod.rs crates/api/src/selector/ast.rs crates/api/src/selector/eval.rs crates/api/src/selector/parser.rs crates/api/src/selector/token.rs crates/api/src/time.rs crates/api/src/value.rs

/root/repo/target/release/deps/libjmst_api-d1a31448349dbcb7.rmeta: crates/api/src/lib.rs crates/api/src/body.rs crates/api/src/destination.rs crates/api/src/error.rs crates/api/src/id.rs crates/api/src/message.rs crates/api/src/modes.rs crates/api/src/properties.rs crates/api/src/provider.rs crates/api/src/selector/mod.rs crates/api/src/selector/ast.rs crates/api/src/selector/eval.rs crates/api/src/selector/parser.rs crates/api/src/selector/token.rs crates/api/src/time.rs crates/api/src/value.rs

crates/api/src/lib.rs:
crates/api/src/body.rs:
crates/api/src/destination.rs:
crates/api/src/error.rs:
crates/api/src/id.rs:
crates/api/src/message.rs:
crates/api/src/modes.rs:
crates/api/src/properties.rs:
crates/api/src/provider.rs:
crates/api/src/selector/mod.rs:
crates/api/src/selector/ast.rs:
crates/api/src/selector/eval.rs:
crates/api/src/selector/parser.rs:
crates/api/src/selector/token.rs:
crates/api/src/time.rs:
crates/api/src/value.rs:
