/root/repo/target/release/deps/fanout_micro-69e90946646ae2f2.d: crates/bench/benches/fanout_micro.rs

/root/repo/target/release/deps/fanout_micro-69e90946646ae2f2: crates/bench/benches/fanout_micro.rs

crates/bench/benches/fanout_micro.rs:
