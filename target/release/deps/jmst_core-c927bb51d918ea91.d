/root/repo/target/release/deps/jmst_core-c927bb51d918ea91.d: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/config.rs crates/core/src/defs.rs crates/core/src/perf.rs crates/core/src/properties/mod.rs crates/core/src/properties/duplicates.rs crates/core/src/properties/expiry.rs crates/core/src/properties/integrity.rs crates/core/src/properties/ordering.rs crates/core/src/properties/priority.rs crates/core/src/properties/required.rs crates/core/src/report.rs crates/core/src/violation.rs

/root/repo/target/release/deps/libjmst_core-c927bb51d918ea91.rlib: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/config.rs crates/core/src/defs.rs crates/core/src/perf.rs crates/core/src/properties/mod.rs crates/core/src/properties/duplicates.rs crates/core/src/properties/expiry.rs crates/core/src/properties/integrity.rs crates/core/src/properties/ordering.rs crates/core/src/properties/priority.rs crates/core/src/properties/required.rs crates/core/src/report.rs crates/core/src/violation.rs

/root/repo/target/release/deps/libjmst_core-c927bb51d918ea91.rmeta: crates/core/src/lib.rs crates/core/src/analyzer.rs crates/core/src/config.rs crates/core/src/defs.rs crates/core/src/perf.rs crates/core/src/properties/mod.rs crates/core/src/properties/duplicates.rs crates/core/src/properties/expiry.rs crates/core/src/properties/integrity.rs crates/core/src/properties/ordering.rs crates/core/src/properties/priority.rs crates/core/src/properties/required.rs crates/core/src/report.rs crates/core/src/violation.rs

crates/core/src/lib.rs:
crates/core/src/analyzer.rs:
crates/core/src/config.rs:
crates/core/src/defs.rs:
crates/core/src/perf.rs:
crates/core/src/properties/mod.rs:
crates/core/src/properties/duplicates.rs:
crates/core/src/properties/expiry.rs:
crates/core/src/properties/integrity.rs:
crates/core/src/properties/ordering.rs:
crates/core/src/properties/priority.rs:
crates/core/src/properties/required.rs:
crates/core/src/report.rs:
crates/core/src/violation.rs:
