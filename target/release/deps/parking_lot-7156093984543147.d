/root/repo/target/release/deps/parking_lot-7156093984543147.d: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-7156093984543147.rlib: shims/parking_lot/src/lib.rs

/root/repo/target/release/deps/libparking_lot-7156093984543147.rmeta: shims/parking_lot/src/lib.rs

shims/parking_lot/src/lib.rs:
