/root/repo/target/release/deps/jmst_broker-d95cd29203640db8.d: crates/broker/src/lib.rs crates/broker/src/config.rs crates/broker/src/connection.rs crates/broker/src/core.rs crates/broker/src/endpoint.rs crates/broker/src/faults.rs crates/broker/src/provider.rs crates/broker/src/session.rs

/root/repo/target/release/deps/libjmst_broker-d95cd29203640db8.rlib: crates/broker/src/lib.rs crates/broker/src/config.rs crates/broker/src/connection.rs crates/broker/src/core.rs crates/broker/src/endpoint.rs crates/broker/src/faults.rs crates/broker/src/provider.rs crates/broker/src/session.rs

/root/repo/target/release/deps/libjmst_broker-d95cd29203640db8.rmeta: crates/broker/src/lib.rs crates/broker/src/config.rs crates/broker/src/connection.rs crates/broker/src/core.rs crates/broker/src/endpoint.rs crates/broker/src/faults.rs crates/broker/src/provider.rs crates/broker/src/session.rs

crates/broker/src/lib.rs:
crates/broker/src/config.rs:
crates/broker/src/connection.rs:
crates/broker/src/core.rs:
crates/broker/src/endpoint.rs:
crates/broker/src/faults.rs:
crates/broker/src/provider.rs:
crates/broker/src/session.rs:
