/root/repo/target/release/deps/jmst_sim-262a5cd20da64c98.d: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/clock.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/pubsub.rs crates/sim/src/service.rs

/root/repo/target/release/deps/libjmst_sim-262a5cd20da64c98.rlib: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/clock.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/pubsub.rs crates/sim/src/service.rs

/root/repo/target/release/deps/libjmst_sim-262a5cd20da64c98.rmeta: crates/sim/src/lib.rs crates/sim/src/arrival.rs crates/sim/src/clock.rs crates/sim/src/dist.rs crates/sim/src/engine.rs crates/sim/src/pubsub.rs crates/sim/src/service.rs

crates/sim/src/lib.rs:
crates/sim/src/arrival.rs:
crates/sim/src/clock.rs:
crates/sim/src/dist.rs:
crates/sim/src/engine.rs:
crates/sim/src/pubsub.rs:
crates/sim/src/service.rs:
