/root/repo/target/release/deps/serde_json-6e43ed535b79d87f.d: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-6e43ed535b79d87f.rlib: shims/serde_json/src/lib.rs

/root/repo/target/release/deps/libserde_json-6e43ed535b79d87f.rmeta: shims/serde_json/src/lib.rs

shims/serde_json/src/lib.rs:
