/root/repo/target/release/deps/jmst_bench-c0b5f52f0a4aff5f.d: crates/bench/src/lib.rs

/root/repo/target/release/deps/libjmst_bench-c0b5f52f0a4aff5f.rlib: crates/bench/src/lib.rs

/root/repo/target/release/deps/libjmst_bench-c0b5f52f0a4aff5f.rmeta: crates/bench/src/lib.rs

crates/bench/src/lib.rs:
