/root/repo/target/release/deps/serde-141658eb2ad91b2e.d: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-141658eb2ad91b2e.rlib: shims/serde/src/lib.rs

/root/repo/target/release/deps/libserde-141658eb2ad91b2e.rmeta: shims/serde/src/lib.rs

shims/serde/src/lib.rs:
