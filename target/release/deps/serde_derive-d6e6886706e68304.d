/root/repo/target/release/deps/serde_derive-d6e6886706e68304.d: shims/serde_derive/src/lib.rs

/root/repo/target/release/deps/libserde_derive-d6e6886706e68304.so: shims/serde_derive/src/lib.rs

shims/serde_derive/src/lib.rs:
