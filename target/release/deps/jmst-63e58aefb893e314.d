/root/repo/target/release/deps/jmst-63e58aefb893e314.d: src/lib.rs

/root/repo/target/release/deps/libjmst-63e58aefb893e314.rlib: src/lib.rs

/root/repo/target/release/deps/libjmst-63e58aefb893e314.rmeta: src/lib.rs

src/lib.rs:
