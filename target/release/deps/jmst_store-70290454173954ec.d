/root/repo/target/release/deps/jmst_store-70290454173954ec.d: crates/store/src/lib.rs crates/store/src/csv.rs crates/store/src/disk.rs crates/store/src/event.rs crates/store/src/query.rs crates/store/src/stats.rs crates/store/src/table.rs crates/store/src/trace.rs

/root/repo/target/release/deps/libjmst_store-70290454173954ec.rlib: crates/store/src/lib.rs crates/store/src/csv.rs crates/store/src/disk.rs crates/store/src/event.rs crates/store/src/query.rs crates/store/src/stats.rs crates/store/src/table.rs crates/store/src/trace.rs

/root/repo/target/release/deps/libjmst_store-70290454173954ec.rmeta: crates/store/src/lib.rs crates/store/src/csv.rs crates/store/src/disk.rs crates/store/src/event.rs crates/store/src/query.rs crates/store/src/stats.rs crates/store/src/table.rs crates/store/src/trace.rs

crates/store/src/lib.rs:
crates/store/src/csv.rs:
crates/store/src/disk.rs:
crates/store/src/event.rs:
crates/store/src/query.rs:
crates/store/src/stats.rs:
crates/store/src/table.rs:
crates/store/src/trace.rs:
