/root/repo/target/release/examples/certify_provider-ba0a8b0e80df759d.d: examples/certify_provider.rs

/root/repo/target/release/examples/certify_provider-ba0a8b0e80df759d: examples/certify_provider.rs

examples/certify_provider.rs:
