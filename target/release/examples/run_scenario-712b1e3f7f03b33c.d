/root/repo/target/release/examples/run_scenario-712b1e3f7f03b33c.d: examples/run_scenario.rs

/root/repo/target/release/examples/run_scenario-712b1e3f7f03b33c: examples/run_scenario.rs

examples/run_scenario.rs:
