/root/repo/target/release/examples/request_reply-be9f5c10be753157.d: examples/request_reply.rs

/root/repo/target/release/examples/request_reply-be9f5c10be753157: examples/request_reply.rs

examples/request_reply.rs:
