/root/repo/target/release/examples/quickstart-1764637a7c0edcc6.d: examples/quickstart.rs

/root/repo/target/release/examples/quickstart-1764637a7c0edcc6: examples/quickstart.rs

examples/quickstart.rs:
